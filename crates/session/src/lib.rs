//! Long-lived incremental timing sessions with transactional ECO edits.
//!
//! Production STA is not a batch program: a placement/routing loop holds
//! one design open for hours and streams in single-net engineering change
//! orders (ECOs), expecting each to be re-timed in milliseconds without
//! ever serving an answer that differs from a from-scratch analysis. This
//! crate builds that service layer on top of the `nsta-sta` engine's
//! window-based crosstalk fixed point (Nazarian & Pedram, DATE 2005):
//!
//! * [`TimingSession`] loads netlist + SPEF + boundary conditions once
//!   and retains the converged analysis, its propagation states, and a
//!   persistent topology-keyed factorization cache across edits.
//! * Every edit ([`Edit::SetLoad`], [`Edit::SetDriveResistance`],
//!   [`Edit::ReannotateNet`]) is a **transaction**: validate → preflight
//!   lint the candidate → incrementally re-solve only the dirtied
//!   coupling clusters → splice into the retained state → commit. *Any*
//!   failure — degenerate mesh, injected fault, non-convergence,
//!   deadline expiry — rolls the session back to the last consistent
//!   snapshot and reports a structured [`EditOutcome`] instead of
//!   leaving a torn state. (Candidate state is built beside the live
//!   state and only swapped in on success, so "rollback" is literally
//!   "don't swap".)
//! * The append-only [`TimingSession::journal`] makes any committed
//!   state deterministically reproducible from the seed inputs:
//!   [`TimingSession::replay`] rebuilds a fresh session and re-applies
//!   the journal, and the result must match bit-for-bit.
//! * Shadow audit ([`SessionOptions::audit_every_n`]): every N commits
//!   the session re-runs the *full batch* analysis and verifies the
//!   incremental state matches within [`SessionOptions::audit_tolerance`]
//!   (default 1e-6 ps), with never-dirtied nets bit-identical. A
//!   divergence is a first-class [`AuditFailure`] that quarantines the
//!   session read-only — wrong timing is never served silently.
//! * Epoch counters: each commit bumps the session epoch and the dirty
//!   cones' epoch counters; analysis results carry their epoch in
//!   `SiDiagnostics::epoch`, so a stale retained report is detectable
//!   with [`TimingSession::is_stale`].

#![forbid(unsafe_code)]

use std::collections::HashSet;
use std::fmt;

use nsta_lint::{run_lint, LintConfig, LintDiagnostic, LintInput, Severity};
use nsta_parasitics::{bind_couplings, BindOptions, BoundCouplings, DNet, SpefError, SpefFile};
use nsta_sta::{
    BoundaryConditions, ConeClusters, CouplingSpec, NetId, OutputBoundary, RetainedAnalysis,
    SiAnalysis, SiDiagnostics, SiOptions, Sta, StaError, TimingReport, TopoCache,
};

/// Lint rules whose *new* appearance in an edit's delta rejects the edit
/// outright, whatever their configured severity: both describe inputs the
/// analysis cannot produce meaningful timing for.
const REJECT_RULES: [&str; 2] = ["net.undriven", "spef.nonpositive-rc"];

/// Configuration of a [`TimingSession`].
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Analysis options for the initial load and every incremental
    /// re-solve. `si.deadline` bounds each *edit's* re-solve (expiry
    /// rolls the edit back); the shadow audit always runs undeadlined.
    pub si: SiOptions,
    /// Run the full batch analysis and verify the incremental state
    /// against it after every N commits (`None`: only on
    /// [`TimingSession::audit_now`]).
    pub audit_every_n: Option<usize>,
    /// Preflight-lint the candidate state of every edit and reject edits
    /// that introduce new deny-severity or [`REJECT_RULES`] diagnostics.
    pub preflight: bool,
    /// Shadow-audit tolerance on arrivals/slews/slacks (seconds).
    /// Default `1e-18` (= 1e-6 ps).
    pub audit_tolerance: f64,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            si: SiOptions::default(),
            audit_every_n: None,
            preflight: true,
            audit_tolerance: 1e-18,
        }
    }
}

/// One transactional edit. All variants name nets by design name so a
/// journal is meaningful independent of any session's `NetId` mapping.
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Replace the capacitive load on a primary output net (F).
    SetLoad {
        /// Primary output net name.
        port: String,
        /// New load (F, finite and non-negative).
        farads: f64,
    },
    /// Replace the Thevenin driver resistance of a coupled victim (Ω).
    SetDriveResistance {
        /// Victim net name (must have a coupling spec).
        net: String,
        /// New driver resistance (Ω, finite and positive).
        ohms: f64,
    },
    /// Replace one net's extracted parasitics (`*D_NET` section) and
    /// rebind every coupling spec the change reaches.
    ReannotateNet {
        /// Replacement section; `dnet.name` selects the net.
        dnet: DNet,
    },
}

impl Edit {
    /// The design net name the edit targets.
    pub fn target(&self) -> &str {
        match self {
            Edit::SetLoad { port, .. } => port,
            Edit::SetDriveResistance { net, .. } => net,
            Edit::ReannotateNet { dnet } => &dnet.name,
        }
    }

    /// Short machine-readable edit kind (for logs and bench output).
    pub fn kind(&self) -> &'static str {
        match self {
            Edit::SetLoad { .. } => "set_load",
            Edit::SetDriveResistance { .. } => "set_drive_resistance",
            Edit::ReannotateNet { .. } => "reannotate_net",
        }
    }
}

/// Why a failed edit was rolled back.
#[derive(Debug, Clone, PartialEq)]
pub enum RollbackCause {
    /// The incremental re-solve failed outright (degenerate mesh,
    /// exhausted numeric fallback chain, injected fault under
    /// `FaultPolicy::Fail`, …).
    Analysis(String),
    /// The window fixed point did not converge on the dirty clusters.
    NonConvergence,
    /// The per-edit deadline expired mid-solve; committing would have
    /// retained stale nominal timing for the skipped victims.
    DeadlineExpired,
}

impl fmt::Display for RollbackCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RollbackCause::Analysis(e) => write!(f, "analysis failed: {e}"),
            RollbackCause::NonConvergence => f.write_str("fixed point did not converge"),
            RollbackCause::DeadlineExpired => f.write_str("edit deadline expired"),
        }
    }
}

/// Result of one shadow audit that passed (or is being reported inside a
/// successful commit).
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Session epoch the audit certified.
    pub epoch: u64,
    /// Worst |incremental − batch| over arrivals/slews/slacks (s).
    pub max_divergence: f64,
    /// Whether every never-dirtied net compared bit-identical.
    pub untouched_identical: bool,
}

/// A shadow-audit divergence: the incremental state does not match a
/// fresh batch analysis. First-class and terminal — the session is
/// quarantined read-only so the divergent timing is never extended.
#[derive(Debug, Clone)]
pub struct AuditFailure {
    /// Session epoch the failed audit ran at.
    pub epoch: u64,
    /// Net with the worst divergence, when attributable.
    pub worst_net: Option<String>,
    /// Worst |incremental − batch| observed (s).
    pub max_divergence: f64,
    /// What diverged, human-readable.
    pub detail: String,
}

impl fmt::Display for AuditFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shadow audit diverged at epoch {}: {} (max divergence {:.3e} s{})",
            self.epoch,
            self.detail,
            self.max_divergence,
            match &self.worst_net {
                Some(n) => format!(", worst at net {n}"),
                None => String::new(),
            }
        )
    }
}

/// Bookkeeping of one committed edit.
#[derive(Debug, Clone)]
pub struct CommitInfo {
    /// Session epoch after the commit (starts at 0 on load; each commit
    /// increments it).
    pub epoch: u64,
    /// Coupling clusters re-solved.
    pub dirty_clusters: usize,
    /// Cones those clusters span.
    pub dirty_cones: usize,
    /// Nets whose retained state was replaced.
    pub dirty_nets: usize,
    /// Coupling specs re-simulated.
    pub specs_resolved: usize,
    /// Topology-cache entries (stored systems + quarantine records)
    /// released because the edit invalidated their geometry.
    pub released_cache_entries: usize,
    /// The shadow audit triggered by this commit, if one ran and passed.
    pub audit: Option<AuditReport>,
}

/// Structured outcome of [`TimingSession::apply`]. Never a panic and
/// never a torn state: anything but [`EditOutcome::Committed`] (or
/// [`EditOutcome::AuditFailed`], which commits and then quarantines)
/// leaves the session exactly as it was before the call.
#[derive(Debug, Clone)]
pub enum EditOutcome {
    /// The edit validated, re-solved incrementally and committed.
    Committed(CommitInfo),
    /// The edit was refused before touching any state — unknown net, a
    /// non-finite value, or a preflight-lint regression. `diagnostics`
    /// carries the lint findings that caused a lint rejection.
    Rejected {
        /// Why the edit was refused.
        reason: String,
        /// New lint diagnostics the candidate would have introduced.
        diagnostics: Vec<LintDiagnostic>,
    },
    /// The re-solve failed; the session was rolled back to the last
    /// consistent snapshot.
    RolledBack {
        /// What failed.
        cause: RollbackCause,
    },
    /// The edit committed but the shadow audit it triggered found a
    /// divergence: the session is now quarantined read-only.
    AuditFailed(AuditFailure),
    /// The session is quarantined by an earlier [`AuditFailure`]; the
    /// edit was refused.
    ReadOnly(AuditFailure),
}

impl EditOutcome {
    /// Whether the edit's changes are in the session state (note that
    /// [`EditOutcome::AuditFailed`] commits *and* quarantines).
    pub fn is_committed(&self) -> bool {
        matches!(
            self,
            EditOutcome::Committed(_) | EditOutcome::AuditFailed(_)
        )
    }
}

/// Failure constructing (or replaying) a session.
#[derive(Debug)]
pub enum SessionError {
    /// Engine construction or the seeding batch analysis failed.
    Sta(StaError),
    /// SPEF binding failed.
    Spef(SpefError),
    /// The load-time preflight lint found deny-severity defects.
    Lint(Vec<LintDiagnostic>),
    /// Replay of a journal entry did not commit — the journal does not
    /// reproduce the session (this indicates a bug, not bad input).
    Replay {
        /// Index of the journal entry that failed.
        index: usize,
        /// The outcome it produced instead of committing.
        outcome: Box<EditOutcome>,
    },
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Sta(e) => write!(f, "analysis failed: {e}"),
            SessionError::Spef(e) => write!(f, "parasitics binding failed: {e}"),
            SessionError::Lint(diags) => {
                write!(
                    f,
                    "load preflight found {} deny-level defect(s)",
                    diags.len()
                )
            }
            SessionError::Replay { index, outcome } => {
                write!(f, "journal entry {index} failed to replay: {outcome:?}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<StaError> for SessionError {
    fn from(e: StaError) -> Self {
        SessionError::Sta(e)
    }
}

impl From<SpefError> for SessionError {
    fn from(e: SpefError) -> Self {
        SessionError::Spef(e)
    }
}

/// Candidate state an edit builds beside the live session. Committing is
/// swapping these in; rolling back is dropping them.
struct Candidate {
    bc: BoundaryConditions,
    spef: SpefFile,
    bound: BoundCouplings,
    clusters: ConeClusters,
    /// Nets seeding the dirty closure (edited net + changed victims).
    seeds: Vec<NetId>,
    /// Victims whose cached factorizations the edit invalidates.
    invalidated: Vec<NetId>,
}

/// A long-lived incremental timing session. See the crate docs.
pub struct TimingSession {
    sta: Sta,
    options: SessionOptions,
    bind: BindOptions,
    // Seed inputs, kept verbatim for journaled replay.
    seed_spef: SpefFile,
    seed_bc: BoundaryConditions,
    // Live state (always the last consistent snapshot).
    spef: SpefFile,
    bc: BoundaryConditions,
    bound: BoundCouplings,
    clusters: ConeClusters,
    retained: RetainedAnalysis,
    cache: TopoCache,
    lint_baseline: HashSet<(String, String)>,
    journal: Vec<Edit>,
    epoch: u64,
    cone_epochs: Vec<u64>,
    /// Per-net: was this net's cone ever re-solved since load? The audit
    /// requires bit-identity for nets where this is still false.
    ever_dirty: Vec<bool>,
    commits_since_audit: usize,
    quarantine: Option<AuditFailure>,
    // Counters surfaced to bench/CI.
    rollbacks: u64,
    rejected: u64,
    audits_run: u64,
    released_total: u64,
    max_audit_divergence: f64,
}

impl TimingSession {
    /// Opens a session: binds `spef` onto the engine's design, preflights
    /// the result (deny-severity lint defects refuse the load), runs the
    /// full batch analysis once, and retains it as epoch 0.
    ///
    /// # Errors
    ///
    /// [`SessionError::Spef`] on binding failure, [`SessionError::Lint`]
    /// on deny-level lint defects, [`SessionError::Sta`] when the seeding
    /// analysis fails.
    pub fn open(
        sta: Sta,
        spef: SpefFile,
        bind: BindOptions,
        bc: BoundaryConditions,
        options: SessionOptions,
    ) -> Result<Self, SessionError> {
        let mut span = nsta_obs::span!("session.open");
        let bound = bind_couplings(&spef, sta.design(), &bind)?;
        let lint = Self::lint(&sta, &spef, &bound.specs, &bc, &LintConfig::new());
        if options.preflight && lint.deny_count() > 0 {
            return Err(SessionError::Lint(
                lint.diagnostics
                    .into_iter()
                    .filter(|d| d.severity == Severity::Deny)
                    .collect(),
            ));
        }
        let lint_baseline = Self::fingerprints(&lint.diagnostics);
        let clusters = sta.cone_clusters(&bound.specs);
        let cache = TopoCache::new(options.si.topo_cache, options.si.cache_budget_bytes);
        let retained = sta.session_analyze(bc.clone(), &bound.specs, &options.si, &cache, None)?;
        let cones = sta.graph().components().len();
        let nets = sta.design().net_count();
        span.set_arg("cones", cones as f64);
        span.set_arg("clusters", clusters.clusters() as f64);
        Ok(TimingSession {
            seed_spef: spef.clone(),
            seed_bc: bc.clone(),
            spef,
            bc,
            bound,
            clusters,
            retained,
            cache,
            lint_baseline,
            journal: Vec::new(),
            epoch: 0,
            cone_epochs: vec![0; cones],
            ever_dirty: vec![false; nets],
            commits_since_audit: 0,
            quarantine: None,
            rollbacks: 0,
            rejected: 0,
            audits_run: 0,
            released_total: 0,
            max_audit_divergence: 0.0,
            sta,
            options,
            bind,
        })
    }

    fn lint(
        sta: &Sta,
        spef: &SpefFile,
        specs: &[CouplingSpec],
        bc: &BoundaryConditions,
        config: &LintConfig,
    ) -> nsta_lint::LintReport {
        run_lint(
            &LintInput {
                design: sta.design(),
                library: sta.library(),
                couplings: specs,
                boundary: bc,
                spef: Some(spef),
                sdc: None,
            },
            config,
        )
    }

    /// The per-edit preflight lint configuration: rules whose inputs this
    /// edit cannot change are set to `Allow` (skipped entirely). The
    /// netlist and library are immutable for the session's lifetime, so
    /// design-structure rules can never produce a *new* finding; SPEF
    /// content rules only matter when the edit replaces an annotation.
    /// The boundary-reading SDC rules always stay on — they are cheap and
    /// `set_load` does move the boundary. The full-registry lint at
    /// [`TimingSession::open`] is unaffected.
    fn edit_lint_config(edit: &Edit) -> LintConfig {
        const DESIGN_RULES: [&str; 3] = ["net.undriven", "net.multi-driven", "net.floating"];
        const SPEF_RULES: [&str; 6] = [
            "spef.unknown-net",
            "spef.unknown-coupling-net",
            "spef.missing-annotation",
            "spef.nonpositive-rc",
            "spef.degenerate-extraction",
            "spef.duplicate-annotation",
        ];
        let mut config = LintConfig::new();
        for rule in DESIGN_RULES {
            config.set(rule, Severity::Allow);
        }
        if !matches!(edit, Edit::ReannotateNet { .. }) {
            for rule in SPEF_RULES {
                config.set(rule, Severity::Allow);
            }
        }
        config
    }

    fn fingerprints(diags: &[LintDiagnostic]) -> HashSet<(String, String)> {
        diags
            .iter()
            .map(|d| (d.rule_id.to_string(), d.subject.clone()))
            .collect()
    }

    /// The retained timing report (always the last committed epoch).
    pub fn report(&self) -> &TimingReport {
        &self.retained.analysis.report
    }

    /// The retained analysis: report, adjustments, pruned aggressors and
    /// diagnostics of the last committed epoch (`diagnostics.epoch`
    /// matches [`TimingSession::epoch`]).
    pub fn analysis(&self) -> &SiAnalysis {
        &self.retained.analysis
    }

    /// Commit counter: 0 after load, +1 per committed edit.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a result captured earlier is stale: its diagnostics carry
    /// an epoch other than the session's current one.
    pub fn is_stale(&self, diagnostics: &SiDiagnostics) -> bool {
        diagnostics.epoch != self.epoch
    }

    /// Epoch counter of `net`'s cone: the session epoch at which that
    /// cone's retained state was last re-solved.
    pub fn cone_epoch(&self, net: NetId) -> Option<u64> {
        let cone = self.clusters.cone_of_net(net)?;
        self.cone_epochs.get(cone).copied()
    }

    /// The append-only journal of committed edits, oldest first.
    pub fn journal(&self) -> &[Edit] {
        &self.journal
    }

    /// The quarantining audit failure, if the session is read-only.
    pub fn quarantined(&self) -> Option<&AuditFailure> {
        self.quarantine.as_ref()
    }

    /// Rolled-back edit count.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Rejected edit count (validation/lint refusals).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Shadow audits run (passed or failed).
    pub fn audits_run(&self) -> u64 {
        self.audits_run
    }

    /// Worst audit divergence observed so far (s).
    pub fn max_audit_divergence(&self) -> f64 {
        self.max_audit_divergence
    }

    /// Total topology-cache entries released by edits.
    pub fn released_cache_entries(&self) -> u64 {
        self.released_total
    }

    /// Current coupling specs (post-edit).
    pub fn couplings(&self) -> &[CouplingSpec] {
        &self.bound.specs
    }

    /// Current SPEF state (post-edit).
    pub fn spef(&self) -> &SpefFile {
        &self.spef
    }

    /// Current boundary conditions (post-edit).
    pub fn boundary(&self) -> &BoundaryConditions {
        &self.bc
    }

    /// The engine the session analyzes with.
    pub fn sta(&self) -> &Sta {
        &self.sta
    }

    /// Replaces the per-edit analysis deadline (e.g. to bound one risky
    /// edit); `None` removes it. The shadow audit is never deadlined.
    pub fn set_edit_deadline(&mut self, deadline: Option<nsta_sta::Deadline>) {
        self.options.si.deadline = deadline;
    }

    /// Applies one transactional edit. Never panics and never leaves a
    /// torn state; see [`EditOutcome`] for the contract of each variant.
    pub fn apply(&mut self, edit: Edit) -> EditOutcome {
        let mut span = nsta_obs::span!("session.edit");
        span.set_arg("epoch", self.epoch as f64);
        let outcome = self.apply_inner(&edit);
        match &outcome {
            EditOutcome::Committed(info) => {
                span.set_arg("dirty_cones", info.dirty_cones as f64);
                nsta_obs::count!("session.commits");
            }
            EditOutcome::Rejected { .. } => {
                nsta_obs::count!("session.rejected");
            }
            EditOutcome::RolledBack { .. } => {
                nsta_obs::count!("session.rollbacks");
            }
            EditOutcome::AuditFailed(_) | EditOutcome::ReadOnly(_) => {
                nsta_obs::count!("session.audit_failures");
            }
        }
        outcome
    }

    fn apply_inner(&mut self, edit: &Edit) -> EditOutcome {
        if let Some(failure) = &self.quarantine {
            return EditOutcome::ReadOnly(failure.clone());
        }
        // 1. Validate the edit and build the candidate state beside the
        //    live one. Nothing below mutates `self` until commit.
        let candidate = match self.build_candidate(edit) {
            Ok(c) => c,
            Err(outcome) => {
                self.rejected += 1;
                return outcome;
            }
        };
        // 2. Preflight the candidate: an edit introducing new
        //    deny-severity or REJECT_RULES diagnostics is refused with
        //    the evidence embedded.
        let mut candidate_lint: Option<HashSet<(String, String)>> = None;
        if self.options.preflight {
            let config = Self::edit_lint_config(edit);
            let lint = Self::lint(
                &self.sta,
                &candidate.spef,
                &candidate.bound.specs,
                &candidate.bc,
                &config,
            );
            let fresh: Vec<LintDiagnostic> = lint
                .diagnostics
                .iter()
                .filter(|d| {
                    !self
                        .lint_baseline
                        .contains(&(d.rule_id.to_string(), d.subject.clone()))
                })
                .filter(|d| d.severity == Severity::Deny || REJECT_RULES.contains(&d.rule_id))
                .cloned()
                .collect();
            if !fresh.is_empty() {
                self.rejected += 1;
                return EditOutcome::Rejected {
                    reason: format!(
                        "preflight: edit would introduce {} new lint defect(s)",
                        fresh.len()
                    ),
                    diagnostics: fresh,
                };
            }
            // The re-evaluated rules' fingerprints replace their slice of
            // the baseline; rules the config skipped keep their old
            // fingerprints (their findings are unchanged by construction)
            // — applied only once the edit commits.
            let spef_rerun = matches!(edit, Edit::ReannotateNet { .. });
            let mut next: HashSet<(String, String)> = self
                .lint_baseline
                .iter()
                .filter(|(rule, _)| {
                    rule.starts_with("net.") || (!spef_rerun && rule.starts_with("spef."))
                })
                .cloned()
                .collect();
            next.extend(Self::fingerprints(&lint.diagnostics));
            candidate_lint = Some(next);
        }
        // 3. Dirty closure: clusters reached by the edit.
        let dirty_clusters = candidate.clusters.dirty_clusters(&candidate.seeds);
        let dirty_mask = candidate.clusters.net_mask(&dirty_clusters);
        let cone_mask = candidate.clusters.cone_mask(&dirty_clusters);
        let dirty_specs: Vec<CouplingSpec> = candidate
            .bound
            .specs
            .iter()
            .filter(|s| {
                candidate
                    .clusters
                    .cluster_of_net(s.victim)
                    .is_some_and(|c| dirty_clusters[c])
            })
            .cloned()
            .collect();
        // 4. Incremental re-solve of the dirty clusters only, against the
        //    session's persistent topology cache. The sweeps are scoped to
        //    the dirty cones; everything outside them is discarded by the
        //    merge's dirty-net mask.
        let patch = match self.sta.session_analyze(
            candidate.bc.clone(),
            &dirty_specs,
            &self.options.si,
            &self.cache,
            Some(&cone_mask),
        ) {
            Ok(p) => p,
            Err(e) => {
                self.rollbacks += 1;
                return EditOutcome::RolledBack {
                    cause: RollbackCause::Analysis(e.to_string()),
                };
            }
        };
        if patch.analysis.diagnostics.timed_out {
            self.rollbacks += 1;
            return EditOutcome::RolledBack {
                cause: RollbackCause::DeadlineExpired,
            };
        }
        if !patch.analysis.diagnostics.converged {
            self.rollbacks += 1;
            return EditOutcome::RolledBack {
                cause: RollbackCause::NonConvergence,
            };
        }
        // 5. Splice the patch into the retained state (bit-identical to a
        //    batch run over the edited design — see nsta-sta's session
        //    module docs).
        let next_epoch = self.epoch + 1;
        let merged = match self.sta.session_merge(
            candidate.bc.clone(),
            &self.retained,
            &patch,
            &dirty_mask,
            next_epoch,
        ) {
            Ok(m) => m,
            Err(e) => {
                self.rollbacks += 1;
                return EditOutcome::RolledBack {
                    cause: RollbackCause::Analysis(e.to_string()),
                };
            }
        };
        // 6. Commit: swap the candidate in, release invalidated cache
        //    entries, bump epochs, append the journal.
        let released = self.cache.release_nets(&candidate.invalidated);
        self.released_total += released as u64;
        let dirty_nets = dirty_mask.iter().filter(|&&d| d).count();
        let dirty_cones = candidate.clusters.dirty_cone_count(&dirty_clusters);
        let info = CommitInfo {
            epoch: next_epoch,
            dirty_clusters: dirty_clusters.iter().filter(|&&d| d).count(),
            dirty_cones,
            dirty_nets,
            specs_resolved: dirty_specs.len(),
            released_cache_entries: released,
            audit: None,
        };
        self.bc = candidate.bc;
        self.spef = candidate.spef;
        self.bound = candidate.bound;
        self.clusters = candidate.clusters;
        self.retained = merged;
        self.epoch = next_epoch;
        // Cone counts can change when a re-annotation rewires clusters;
        // resize before stamping (new cones start at the current epoch).
        self.cone_epochs.resize(cone_mask.len(), next_epoch);
        for (cone, dirty) in cone_mask.iter().enumerate() {
            if *dirty {
                self.cone_epochs[cone] = next_epoch;
            }
        }
        for (net, dirty) in dirty_mask.iter().enumerate() {
            if *dirty {
                self.ever_dirty[net] = true;
            }
        }
        if let Some(fps) = candidate_lint {
            self.lint_baseline = fps;
        }
        self.journal.push(edit.clone());
        // 7. Shadow audit every N commits.
        if let Some(n) = self.options.audit_every_n {
            self.commits_since_audit += 1;
            if n > 0 && self.commits_since_audit >= n {
                self.commits_since_audit = 0;
                return match self.run_audit() {
                    Ok(report) => EditOutcome::Committed(CommitInfo {
                        audit: Some(report),
                        ..info
                    }),
                    Err(failure) => EditOutcome::AuditFailed(failure),
                };
            }
        }
        EditOutcome::Committed(info)
    }

    /// Runs the shadow audit now: a fresh full batch analysis compared
    /// against the retained incremental state. On divergence the session
    /// is quarantined read-only and the failure returned.
    ///
    /// # Errors
    ///
    /// The [`AuditFailure`] that quarantined the session (also stored on
    /// it; see [`TimingSession::quarantined`]).
    pub fn audit_now(&mut self) -> Result<AuditReport, AuditFailure> {
        self.run_audit()
    }

    fn run_audit(&mut self) -> Result<AuditReport, AuditFailure> {
        let _span = nsta_obs::span!("session.audit");
        self.audits_run += 1;
        nsta_obs::count!("session.audits");
        // Fresh batch analysis: own cache, no deadline — the reference
        // answer must be complete and deterministic.
        let batch_opts = SiOptions {
            deadline: None,
            ..self.options.si.clone()
        };
        let batch = match self.sta.analyze_with_crosstalk_windows(
            self.bc.clone(),
            &self.bound.specs,
            &batch_opts,
        ) {
            Ok(b) => b,
            Err(e) => {
                let failure = AuditFailure {
                    epoch: self.epoch,
                    worst_net: None,
                    max_divergence: f64::INFINITY,
                    detail: format!("batch reference analysis failed: {e}"),
                };
                self.quarantine = Some(failure.clone());
                return Err(failure);
            }
        };
        let tol = self.options.audit_tolerance;
        let incremental = &self.retained.analysis.report;
        let reference = &batch.report;
        let mut max_div = 0.0f64;
        let mut worst_net: Option<String> = None;
        let mut untouched_identical = true;
        let mut detail: Option<String> = None;
        for (inc, re) in incremental.nets().iter().zip(reference.nets()) {
            let untouched = !self
                .ever_dirty
                .get(inc.net.index())
                .copied()
                .unwrap_or(true);
            if untouched && inc != re {
                untouched_identical = false;
                detail.get_or_insert_with(|| {
                    format!(
                        "never-edited net {} is not bit-identical to batch",
                        inc.name
                    )
                });
                worst_net.get_or_insert_with(|| inc.name.clone());
            }
            for (a, b) in [(&inc.rise, &re.rise), (&inc.fall, &re.fall)] {
                match (a, b) {
                    (Some(a), Some(b)) => {
                        let div = (a.arrival - b.arrival)
                            .abs()
                            .max((a.slew - b.slew).abs())
                            .max(if a.slack.is_finite() || b.slack.is_finite() {
                                (a.slack - b.slack).abs()
                            } else {
                                0.0
                            });
                        if div > max_div {
                            max_div = div;
                            if div > tol {
                                worst_net = Some(inc.name.clone());
                            }
                        }
                    }
                    (None, None) => {}
                    _ => {
                        max_div = f64::INFINITY;
                        worst_net = Some(inc.name.clone());
                        detail.get_or_insert_with(|| {
                            format!("net {} reachable in one analysis only", inc.name)
                        });
                    }
                }
            }
        }
        self.max_audit_divergence = self.max_audit_divergence.max(max_div);
        let within_tol = max_div <= tol;
        if within_tol && untouched_identical {
            return Ok(AuditReport {
                epoch: self.epoch,
                max_divergence: max_div,
                untouched_identical,
            });
        }
        let failure = AuditFailure {
            epoch: self.epoch,
            worst_net,
            max_divergence: max_div,
            detail: detail.unwrap_or_else(|| {
                format!(
                    "incremental state diverges from batch by {max_div:.3e} s (tolerance {tol:.1e})"
                )
            }),
        };
        self.quarantine = Some(failure.clone());
        Err(failure)
    }

    /// Rebuilds a fresh session from the seed inputs and re-applies the
    /// journal — the determinism test hook. The replayed session's report
    /// must equal this session's bit-for-bit; callers assert that.
    ///
    /// # Errors
    ///
    /// Construction errors of the fresh session, or
    /// [`SessionError::Replay`] if a journal entry fails to commit (a
    /// determinism bug by definition).
    pub fn replay(&self) -> Result<TimingSession, SessionError> {
        // Audit cadence is not replayed: the journal captures *edits*;
        // audits are observations.
        let options = SessionOptions {
            audit_every_n: None,
            ..self.options.clone()
        };
        let mut fresh = TimingSession::open(
            self.sta.clone(),
            self.seed_spef.clone(),
            self.bind,
            self.seed_bc.clone(),
            options,
        )?;
        for (index, edit) in self.journal.iter().enumerate() {
            let outcome = fresh.apply(edit.clone());
            if !outcome.is_committed() {
                return Err(SessionError::Replay {
                    index,
                    outcome: Box::new(outcome),
                });
            }
        }
        Ok(fresh)
    }

    fn build_candidate(&self, edit: &Edit) -> Result<Candidate, EditOutcome> {
        let reject = |reason: String| EditOutcome::Rejected {
            reason,
            diagnostics: Vec::new(),
        };
        match edit {
            Edit::SetLoad { port, farads } => {
                let Some(net) = self.sta.design().find_net(port) else {
                    return Err(reject(format!("set_load: unknown net {port:?}")));
                };
                if !self.sta.design().outputs().contains(&net) {
                    return Err(reject(format!(
                        "set_load: net {port:?} is not a primary output"
                    )));
                }
                if !farads.is_finite() || *farads < 0.0 {
                    return Err(reject(format!(
                        "set_load: load must be finite and >= 0, got {farads:e}"
                    )));
                }
                let mut bc = self.bc.clone();
                let old = bc.output(net);
                bc.set_output(
                    net,
                    OutputBoundary {
                        required: old.required,
                        load: *farads,
                    },
                );
                // The receiver load is part of every affected victim's
                // topology signature: invalidate cached systems of the
                // victims in the edited net's cluster.
                let invalidated = self.victims_in_cluster_of(net);
                Ok(Candidate {
                    bc,
                    spef: self.spef.clone(),
                    bound: self.bound.clone(),
                    clusters: self.clusters.clone(),
                    seeds: vec![net],
                    invalidated,
                })
            }
            Edit::SetDriveResistance { net, ohms } => {
                let Some(victim) = self.sta.design().find_net(net) else {
                    return Err(reject(format!("set_drive_resistance: unknown net {net:?}")));
                };
                if !ohms.is_finite() || *ohms <= 0.0 {
                    return Err(reject(format!(
                        "set_drive_resistance: resistance must be finite and > 0, got {ohms:e}"
                    )));
                }
                let mut bound = self.bound.clone();
                let Some(spec) = bound.specs.iter_mut().find(|s| s.victim == victim) else {
                    return Err(reject(format!(
                        "set_drive_resistance: net {net:?} has no coupling spec"
                    )));
                };
                spec.driver_resistance = *ohms;
                Ok(Candidate {
                    bc: self.bc.clone(),
                    spef: self.spef.clone(),
                    bound,
                    clusters: self.clusters.clone(),
                    seeds: vec![victim],
                    invalidated: vec![victim],
                })
            }
            Edit::ReannotateNet { dnet } => {
                let Some(edited) = self.sta.design().find_net(&dnet.name) else {
                    return Err(reject(format!(
                        "reannotate_net: unknown net {:?}",
                        dnet.name
                    )));
                };
                let mut spef = self.spef.clone();
                if let Err(e) = spef.replace_net(dnet.clone()) {
                    return Err(reject(format!("reannotate_net: {e}")));
                }
                let bound = match bind_couplings(&spef, self.sta.design(), &self.bind) {
                    Ok(b) => b,
                    Err(e) => {
                        return Err(reject(format!("reannotate_net: rebind failed: {e}")));
                    }
                };
                // The edit can change more than the edited victim's spec:
                // any spec using the edited wire as an aggressor line
                // model changes too.
                let changed = self.bound.changed_victims(&bound);
                let mut seeds = changed.clone();
                seeds.push(edited);
                let mut invalidated = changed;
                invalidated.push(edited);
                // Coupling topology may have changed (aggressors added or
                // dropped): rebuild the cluster partition.
                let clusters = self.sta.cone_clusters(&bound.specs);
                Ok(Candidate {
                    bc: self.bc.clone(),
                    spef,
                    bound,
                    clusters,
                    seeds,
                    invalidated,
                })
            }
        }
    }

    /// Victims whose spec lives in the same cluster as `net` — the set
    /// whose cached factorizations a boundary edit on that cluster
    /// invalidates.
    fn victims_in_cluster_of(&self, net: NetId) -> Vec<NetId> {
        let Some(cluster) = self.clusters.cluster_of_net(net) else {
            return Vec::new();
        };
        self.bound
            .specs
            .iter()
            .map(|s| s.victim)
            .filter(|v| self.clusters.cluster_of_net(*v) == Some(cluster))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsta_liberty::characterize::{inverter_family, Options};
    use nsta_liberty::Library;
    use nsta_parasitics::parse_spef;
    use nsta_spice::Process;
    use nsta_sta::{verilog, Constraints, Deadline, FakeClock};
    use std::sync::OnceLock;

    fn lib() -> &'static Library {
        static LIB: OnceLock<Library> = OnceLock::new();
        LIB.get_or_init(|| {
            inverter_family(&Process::c013(), &[("INVX1", 1.0)], &Options::fast_test())
                .expect("characterization")
        })
    }

    /// Two independent coupled groups: `a0→v0→y0` × `b0→g0→z0` and the
    /// same for group 1. Each group is one coupling cluster, so an edit
    /// in group 0 must never re-solve (or perturb) group 1.
    const SPEF: &str = "*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*NAME_MAP\n*1 v0\n*2 g0\n*3 v1\n*4 g1\n\
        *D_NET *1 80.0\n*CAP\n1 *1:1 15.0\n2 *1:2 15.0\n3 *1:2 *2:2 50.0\n\
        *RES\n1 *1 *1:1 10.0\n2 *1:1 *1:2 10.0\n*END\n\
        *D_NET *2 30.0\n*CAP\n1 *2:1 30.0\n*RES\n1 *2 *2:1 8.0\n*END\n\
        *D_NET *3 80.0\n*CAP\n1 *3:1 15.0\n2 *3:2 15.0\n3 *3:2 *4:2 50.0\n\
        *RES\n1 *3 *3:1 10.0\n2 *3:1 *3:2 10.0\n*END\n\
        *D_NET *4 30.0\n*CAP\n1 *4:1 30.0\n*RES\n1 *4 *4:1 8.0\n*END\n";

    fn sta() -> Sta {
        let design = verilog::parse_design(
            "module m (a0, b0, y0, z0, a1, b1, y1, z1);\
             input a0, b0, a1, b1; output y0, z0, y1, z1;\
             wire v0, g0, v1, g1;\
             INVX1 u1 (.A(a0), .Y(v0)); INVX1 u2 (.A(v0), .Y(y0));\
             INVX1 u3 (.A(b0), .Y(g0)); INVX1 u4 (.A(g0), .Y(z0));\
             INVX1 u5 (.A(a1), .Y(v1)); INVX1 u6 (.A(v1), .Y(y1));\
             INVX1 u7 (.A(b1), .Y(g1)); INVX1 u8 (.A(g1), .Y(z1)); endmodule",
        )
        .expect("netlist");
        Sta::new(design, lib().clone()).expect("sta")
    }

    fn bc() -> BoundaryConditions {
        BoundaryConditions::uniform(&Constraints::default())
    }

    fn open(options: SessionOptions) -> TimingSession {
        let spef = parse_spef(SPEF).expect("spef");
        TimingSession::open(sta(), spef, BindOptions::default(), bc(), options)
            .expect("session opens")
    }

    #[test]
    fn open_retains_the_batch_state_at_epoch_zero() {
        let s = open(SessionOptions::default());
        assert_eq!(s.epoch(), 0);
        assert_eq!(s.couplings().len(), 2);
        let batch = s
            .sta()
            .analyze_with_crosstalk_windows(bc(), s.couplings(), &SessionOptions::default().si)
            .expect("batch");
        assert_eq!(s.report(), &batch.report);
        assert_eq!(s.analysis().diagnostics.epoch, 0);
        assert!(!s.is_stale(&s.analysis().diagnostics));
        assert!(s.journal().is_empty());
        assert!(s.quarantined().is_none());
    }

    #[test]
    fn set_load_commits_incrementally_and_matches_a_fresh_batch() {
        let mut s = open(SessionOptions::default());
        let before = s.report().clone();
        let stale = s.analysis().diagnostics.clone();
        let outcome = s.apply(Edit::SetLoad {
            port: "y0".into(),
            farads: 40e-15,
        });
        let EditOutcome::Committed(info) = outcome else {
            panic!("expected commit, got {outcome:?}");
        };
        assert_eq!(info.epoch, 1);
        assert_eq!(info.dirty_clusters, 1);
        assert_eq!(info.specs_resolved, 1);
        // Only group 0's six nets are re-solved.
        assert_eq!(info.dirty_nets, 6);
        assert_eq!(s.epoch(), 1);
        assert_eq!(s.journal().len(), 1);
        assert!(s.is_stale(&stale), "pre-edit diagnostics must read stale");

        // Bit-identical to a from-scratch batch over the edited state.
        let design = s.sta().design();
        let y0 = design.find_net("y0").expect("y0");
        let mut edited = bc();
        let old = edited.output(y0);
        edited.set_output(
            y0,
            OutputBoundary {
                required: old.required,
                load: 40e-15,
            },
        );
        let batch = s
            .sta()
            .analyze_with_crosstalk_windows(edited, s.couplings(), &SessionOptions::default().si)
            .expect("batch");
        assert_eq!(s.report(), &batch.report);

        // Untouched group 1 is bit-identical to the pre-edit snapshot,
        // and its cone epoch still reads 0 while group 0's reads 1.
        for name in ["v1", "g1", "y1", "z1"] {
            assert_eq!(s.report().net_by_name(name), before.net_by_name(name));
        }
        let v0 = design.find_net("v0").expect("v0");
        let v1 = design.find_net("v1").expect("v1");
        assert_eq!(s.cone_epoch(v0), Some(1));
        assert_eq!(s.cone_epoch(v1), Some(0));
    }

    #[test]
    fn invalid_edits_are_rejected_without_touching_state() {
        let mut s = open(SessionOptions::default());
        let before = s.report().clone();
        let cases = [
            Edit::SetLoad {
                port: "nope".into(),
                farads: 1e-15,
            },
            Edit::SetLoad {
                port: "v0".into(), // internal net, not a primary output
                farads: 1e-15,
            },
            Edit::SetLoad {
                port: "y0".into(),
                farads: -1e-15,
            },
            Edit::SetDriveResistance {
                net: "y0".into(), // no coupling spec
                ohms: 100.0,
            },
            Edit::SetDriveResistance {
                net: "v0".into(),
                ohms: f64::NAN,
            },
        ];
        let n = cases.len() as u64;
        for edit in cases {
            let outcome = s.apply(edit);
            assert!(
                matches!(outcome, EditOutcome::Rejected { .. }),
                "expected rejection, got {outcome:?}"
            );
        }
        assert_eq!(s.rejected(), n);
        assert_eq!(s.epoch(), 0);
        assert!(s.journal().is_empty());
        assert_eq!(s.report(), &before);
    }

    #[test]
    fn preflight_rejects_an_edit_introducing_an_rc_defect() {
        let mut s = open(SessionOptions::default());
        let before = s.report().clone();
        let mut dnet = s.spef().net("v0").expect("v0 section").clone();
        dnet.caps[0].value = 0.0; // nonpositive element: lint-deny territory
        let outcome = s.apply(Edit::ReannotateNet { dnet });
        match outcome {
            EditOutcome::Rejected { diagnostics, .. } => {
                assert!(
                    diagnostics
                        .iter()
                        .any(|d| d.rule_id == "spef.nonpositive-rc"),
                    "expected spef.nonpositive-rc in {diagnostics:?}"
                );
            }
            other => panic!("expected preflight rejection, got {other:?}"),
        }
        assert_eq!(s.epoch(), 0);
        assert_eq!(s.report(), &before);
    }

    #[test]
    fn expired_deadline_rolls_back_and_the_session_stays_serviceable() {
        let mut s = open(SessionOptions::default());
        let before = s.report().clone();
        s.set_edit_deadline(Some(Deadline::on_fake(FakeClock::new(0), 0)));
        let edit = Edit::SetDriveResistance {
            net: "v0".into(),
            ohms: 150.0,
        };
        let outcome = s.apply(edit.clone());
        assert!(
            matches!(
                outcome,
                EditOutcome::RolledBack {
                    cause: RollbackCause::DeadlineExpired
                }
            ),
            "expected deadline rollback, got {outcome:?}"
        );
        assert_eq!(s.report(), &before, "rollback must restore the snapshot");
        assert_eq!(s.epoch(), 0);
        assert_eq!(s.rollbacks(), 1);
        assert!(s.journal().is_empty());

        // Same edit succeeds once the deadline is lifted: no torn state.
        s.set_edit_deadline(None);
        assert!(s.apply(edit).is_committed());
        assert_eq!(s.epoch(), 1);
    }

    #[test]
    fn audits_pass_and_replay_reproduces_the_committed_state() {
        let mut s = open(SessionOptions {
            audit_every_n: Some(1),
            ..SessionOptions::default()
        });
        let o1 = s.apply(Edit::SetLoad {
            port: "y0".into(),
            farads: 35e-15,
        });
        match &o1 {
            EditOutcome::Committed(info) => {
                let audit = info.audit.as_ref().expect("audit ran on commit 1");
                assert!(audit.untouched_identical);
                assert!(audit.max_divergence <= 1e-18, "{audit:?}");
            }
            other => panic!("expected audited commit, got {other:?}"),
        }
        let o2 = s.apply(Edit::SetDriveResistance {
            net: "v1".into(),
            ohms: 240.0,
        });
        assert!(o2.is_committed(), "{o2:?}");
        let mut dnet = s.spef().net("v0").expect("v0 section").clone();
        for c in &mut dnet.caps {
            c.value *= 1.1;
        }
        for r in &mut dnet.ress {
            r.value *= 1.05;
        }
        let o3 = s.apply(Edit::ReannotateNet { dnet });
        assert!(o3.is_committed(), "{o3:?}");
        assert_eq!(s.epoch(), 3);
        assert_eq!(s.audits_run(), 3);
        assert!(s.quarantined().is_none());

        let replayed = s.replay().expect("replay");
        assert_eq!(replayed.epoch(), 3);
        assert_eq!(
            replayed.report(),
            s.report(),
            "replay must be bit-identical"
        );
        assert_eq!(replayed.journal(), s.journal());
    }
}
