# Golden SDC for the noisy-sta constraint subset.
# Times in ns, capacitances in pF. Exercises every supported command,
# comments, line continuations, quoted names, bare and braced port lists.
create_clock -name "clk" -period 2.5 [get_ports clk_in]

# A genuine arrival window on a: min and max given separately.
set_input_delay 0.25 -clock clk -min [get_ports a]
set_input_delay 0.6 -clock clk -max [get_ports a]

# One point arrival shared by two ports, options before the value.
set_input_delay -clock clk 0.1 [get_ports {b c}]

set_input_transition 0.08 [get_ports {a b}]
set_input_transition -max 0.12 [get_ports c]

set_output_delay 0.4 -clock clk [get_ports y]
set_output_delay 0.2 -clock clk -min \
    [get_ports z]

set_load 0.05 [get_ports y]
set_load 0.02 {y z}

set_false_path -from [get_ports a] -to [get_ports y]
set_false_path -to [get_ports z]
