//! End-to-end integration: netlist + SDC → bind → per-pin arrival
//! windows → timing-window crosstalk filter. The acceptance property of
//! the constraints subsystem: an SDC with distinct per-input min/max
//! delays produces per-pin `ArrivalWindow`s that *change aggressor
//! pruning* versus the uniform `Constraints` run.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nsta_circuit::RcLineSpec;
use nsta_constraints::{bind_sdc, parse_sdc};
use nsta_liberty::characterize::{inverter_family, Options};
use nsta_spice::Process;
use nsta_sta::{verilog::parse_design, Constraints, CouplingSpec, SiOptions, Sta};

/// Victim `v` (one stage from `a`) coupled to aggressor `g` (one stage
/// from `b`). Under uniform constraints both switch in lockstep, so the
/// window filter keeps the aggressor.
fn coupled_design() -> nsta_sta::Design {
    parse_design(
        "module m (a, b, y, z); input a, b; output y, z;\
         wire v, g;\
         INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\
         INVX1 u3 (.A(b), .Y(g)); INVX4 u4 (.A(g), .Y(z));\
         endmodule",
    )
    .unwrap()
}

/// The SDC: a 2 ns clock, a genuine `[0.05, 0.15]` ns arrival window on
/// the victim's source, and a `[1.4, 1.6]` ns window on the aggressor's —
/// per-pin knowledge the uniform model cannot express.
const SDC: &str = "\
create_clock -name clk -period 2
set_input_delay 0.05 -clock clk -min [get_ports a]
set_input_delay 0.15 -clock clk -max [get_ports a]
set_input_delay 1.4 -clock clk -min [get_ports b]
set_input_delay 1.6 -clock clk -max [get_ports b]
set_output_delay 0.3 -clock clk [get_ports {y z}]
";

#[test]
fn sdc_windows_change_aggressor_pruning() {
    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )
    .expect("characterization");
    let design = coupled_design();
    let sdc = parse_sdc(SDC).expect("sdc");
    let bound = bind_sdc(&sdc, &design, &Constraints::default()).expect("bind");

    let sta = Sta::new(design, lib).expect("sta");
    let v = sta.design().find_net("v").unwrap();
    let g = sta.design().find_net("g").unwrap();
    let spec = CouplingSpec::new(v, vec![g], 100e-15, RcLineSpec::per_micron(1000.0).unwrap());
    let options = SiOptions::default();

    // Uniform constraints: victim and aggressor switch in lockstep — the
    // aggressor survives the window filter and pushes the victim out.
    let uniform = sta
        .analyze_with_crosstalk_windows(
            Constraints::default(),
            std::slice::from_ref(&spec),
            &options,
        )
        .expect("uniform analysis");
    assert!(
        uniform.pruned.is_empty(),
        "uniform windows keep the aligned aggressor: {:?}",
        uniform.pruned
    );

    // SDC constraints: the aggressor's source arrives over a nanosecond
    // after the victim settles — its per-pin window cannot overlap.
    let constrained = sta
        .analyze_with_crosstalk_windows(&bound.boundary, &[spec], &options)
        .expect("sdc analysis");
    let pruned_g = constrained
        .pruned
        .iter()
        .find(|p| p.aggressor == g)
        .expect("SDC windows must prune the late aggressor");

    // The pruning record carries the per-pin windows that decided it:
    // the aggressor window starts after its 1.4 ns min input delay...
    assert!(
        pruned_g.aggressor_window.earliest >= 1.4e-9,
        "aggressor window {:?} must start after the SDC min arrival",
        pruned_g.aggressor_window
    );
    // ...and the victim window reflects the [0.05, 0.15] ns input spread:
    // genuinely widened (≥ the 0.1 ns min/max gap), not a point.
    let victim_width = pruned_g.victim_window.latest - pruned_g.victim_window.earliest;
    assert!(
        victim_width >= 0.1e-9,
        "victim window {:?} must span the per-pin min/max spread",
        pruned_g.victim_window
    );
    assert!(pruned_g.victim_window.earliest >= 0.05e-9);

    // Pruning the aggressor changes the victim's noisy timing: the
    // uniform run sees aggressor push-out that the SDC run proves
    // temporally impossible.
    let y = sta.design().find_net("y").unwrap();
    let uni_y = uniform
        .report
        .net(y)
        .unwrap()
        .rise
        .as_ref()
        .unwrap()
        .arrival;
    let sdc_y = constrained
        .report
        .net(y)
        .unwrap()
        .rise
        .as_ref()
        .unwrap()
        .arrival;
    // SDC shifts all arrivals by a's input delay; compensate for the max
    // corner to compare the *crosstalk* contribution.
    let a_max = bound
        .boundary
        .input(sta.design().find_net("a").unwrap())
        .max_arrival;
    assert!(
        sdc_y - a_max < uni_y,
        "without the aggressor the victim must settle earlier \
         (sdc {sdc_y:e} - shift {a_max:e} vs uniform {uni_y:e})"
    );

    // Slack is computed against the clock: required = 2 − 0.3 ns.
    let yt = constrained.report.net(y).unwrap().rise.as_ref().unwrap();
    assert!((yt.required - 1.7e-9).abs() < 1e-18);
    assert!(constrained.report.worst_slack().is_finite());
    assert!(constrained.report.worst_slack() > 0.0);
}
