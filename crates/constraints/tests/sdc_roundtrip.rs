//! Golden-file tests: parse a handwritten SDC, check the command
//! structure against hand-written expectations, round-trip the model
//! through the canonical writer, and exercise the binder's error paths —
//! mirroring the SPEF golden tests of `nsta-parasitics`.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nsta_constraints::{bind_sdc, parse_sdc, write_sdc, MinMax, SdcCommand, SdcError};
use nsta_sta::{Constraints, Design};

const GOLDEN: &str = include_str!("golden.sdc");

#[test]
fn golden_file_parses_with_expected_structure() {
    let sdc = parse_sdc(GOLDEN).expect("golden file parses");
    assert_eq!(sdc.commands.len(), 12);
    let clk = sdc.clocks().next().expect("one clock");
    assert_eq!(clk.name, "clk");
    assert_eq!(clk.period, 2.5);
    assert_eq!(clk.ports, vec!["clk_in"]);
    // The windowed input delay pair on `a`.
    match (&sdc.commands[1], &sdc.commands[2]) {
        (SdcCommand::SetInputDelay(min), SdcCommand::SetInputDelay(max)) => {
            assert_eq!(min.minmax, MinMax::Min);
            assert_eq!(min.delay, 0.25);
            assert_eq!(max.minmax, MinMax::Max);
            assert_eq!(max.delay, 0.6);
            assert_eq!(min.ports, vec!["a"]);
        }
        other => panic!("unexpected commands {other:?}"),
    }
    // Options before the positional value, multi-port list.
    match &sdc.commands[3] {
        SdcCommand::SetInputDelay(d) => {
            assert_eq!(d.delay, 0.1);
            assert_eq!(d.minmax, MinMax::Both);
            assert_eq!(d.ports, vec!["b", "c"]);
        }
        other => panic!("unexpected command {other}"),
    }
    // The continuation line joined into one command.
    match &sdc.commands[7] {
        SdcCommand::SetOutputDelay(d) => {
            assert_eq!(d.minmax, MinMax::Min);
            assert_eq!(d.ports, vec!["z"]);
        }
        other => panic!("unexpected command {other}"),
    }
    // Wildcard false path.
    match &sdc.commands[11] {
        SdcCommand::SetFalsePath(fp) => {
            assert!(fp.from.is_empty());
            assert_eq!(fp.to, vec!["z"]);
        }
        other => panic!("unexpected command {other}"),
    }
}

#[test]
fn golden_file_round_trips_through_the_writer() {
    let first = parse_sdc(GOLDEN).expect("golden file parses");
    let text = write_sdc(&first);
    let second = parse_sdc(&text).expect("canonical output parses");
    // parse ∘ write is the identity on the AST.
    assert_eq!(first, second);
    // And the canonical form is a fixed point of write ∘ parse.
    assert_eq!(text, write_sdc(&second));
}

fn golden_design() -> Design {
    let mut d = Design::new("golden");
    for name in ["clk_in", "a", "b", "c"] {
        let n = d.net(name);
        d.mark_input(n);
    }
    for name in ["y", "z"] {
        let n = d.net(name);
        d.mark_output(n);
    }
    d
}

#[test]
fn golden_file_binds_onto_a_matching_design() {
    let sdc = parse_sdc(GOLDEN).expect("golden file parses");
    let design = golden_design();
    let bound = bind_sdc(&sdc, &design, &Constraints::default()).expect("binds");
    assert_eq!(bound.clock_period(), Some(2.5e-9));
    let a = design.find_net("a").unwrap();
    let w = bound.boundary.input(a);
    assert!((w.min_arrival - 0.25e-9).abs() < 1e-18);
    assert!((w.max_arrival - 0.6e-9).abs() < 1e-18);
    assert!((w.slew - 0.08e-9).abs() < 1e-18);
    // Point arrival on b, transition override on c only.
    let b = bound.boundary.input(design.find_net("b").unwrap());
    assert_eq!(b.min_arrival, b.max_arrival);
    let c = bound.boundary.input(design.find_net("c").unwrap());
    assert!((c.slew - 0.12e-9).abs() < 1e-18);
    // y: required = 2.5 − 0.4 ns; the later set_load wins (0.02 pF).
    let y = bound.boundary.output(design.find_net("y").unwrap());
    assert!((y.required - 2.1e-9).abs() < 1e-18);
    assert!((y.load - 0.02e-12).abs() < 1e-24);
    // z: the `-min` output delay is a hold-corner datum the setup engine
    // ignores, so z keeps the full-period requirement.
    let z = bound.boundary.output(design.find_net("z").unwrap());
    assert!((z.required - 2.5e-9).abs() < 1e-18);
    // Both false paths resolved.
    assert_eq!(bound.boundary.false_paths().len(), 2);
}

#[test]
fn binder_error_cases() {
    let defaults = Constraints::default();
    let design = golden_design();
    // Unknown port.
    let sdc = parse_sdc("set_input_delay 0.1 [get_ports ghost]\n").unwrap();
    match bind_sdc(&sdc, &design, &defaults) {
        Err(SdcError::Bind(m)) => assert!(m.contains("unknown port"), "{m}"),
        other => panic!("expected bind error, got {other:?}"),
    }
    // Duplicate clock.
    let sdc =
        parse_sdc("create_clock -name clk -period 1\ncreate_clock -name clk -period 2\n").unwrap();
    match bind_sdc(&sdc, &design, &defaults) {
        Err(SdcError::Bind(m)) => assert!(m.contains("duplicate clock"), "{m}"),
        other => panic!("expected bind error, got {other:?}"),
    }
    // False path on a missing net.
    let sdc = parse_sdc("set_false_path -from [get_ports phantom] -to [get_ports y]\n").unwrap();
    match bind_sdc(&sdc, &design, &defaults) {
        Err(SdcError::Bind(m)) => assert!(m.contains("unknown port"), "{m}"),
        other => panic!("expected bind error, got {other:?}"),
    }
}
