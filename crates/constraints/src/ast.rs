//! SDC abstract syntax tree.
//!
//! The AST stores values **exactly as written** — times in nanoseconds and
//! capacitances in picofarads, the customary library units of SDC — so the
//! canonical writer can reproduce them digit for digit and `parse ∘ write`
//! is the identity on the model. Scaling to SI happens in the binder
//! ([`bind_sdc`](crate::bind_sdc)), not at parse time.

use std::fmt;

/// Whether a delay/transition applies to the min corner, the max corner,
/// or both (the default when neither flag is given).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MinMax {
    /// `-min` only.
    Min,
    /// `-max` only.
    Max,
    /// Neither flag: applies to both corners.
    Both,
}

impl MinMax {
    /// Whether the min corner is covered.
    pub fn covers_min(self) -> bool {
        matches!(self, MinMax::Min | MinMax::Both)
    }

    /// Whether the max corner is covered.
    pub fn covers_max(self) -> bool {
        matches!(self, MinMax::Max | MinMax::Both)
    }
}

/// `create_clock -name NAME -period P [get_ports {...}]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateClock {
    /// Clock name (`-name`, or the first source port when omitted).
    pub name: String,
    /// Period in ns.
    pub period: f64,
    /// Source ports (may be empty for a virtual clock).
    pub ports: Vec<String>,
}

/// `set_input_delay` / `set_output_delay`: a delay relative to a clock
/// edge on a list of ports.
#[derive(Debug, Clone, PartialEq)]
pub struct PortDelay {
    /// Delay in ns.
    pub delay: f64,
    /// `-clock NAME`, when given.
    pub clock: Option<String>,
    /// `-min` / `-max` / both.
    pub minmax: MinMax,
    /// Target ports.
    pub ports: Vec<String>,
}

/// `set_input_transition VALUE [get_ports {...}]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetInputTransition {
    /// Transition time in ns.
    pub value: f64,
    /// `-min` / `-max` / both (recorded for fidelity; the engine keeps a
    /// single slew per pin, so the binder applies any of them).
    pub minmax: MinMax,
    /// Target ports.
    pub ports: Vec<String>,
}

/// `set_load VALUE [get_ports {...}]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetLoad {
    /// Capacitance in pF.
    pub value: f64,
    /// Target ports.
    pub ports: Vec<String>,
}

/// `set_false_path -from [...] -to [...]`. Either side may be empty,
/// acting as a wildcard over all inputs / all outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct SetFalsePath {
    /// `-from` startpoints (input ports).
    pub from: Vec<String>,
    /// `-to` endpoints (output ports).
    pub to: Vec<String>,
}

/// One parsed SDC command.
#[derive(Debug, Clone, PartialEq)]
pub enum SdcCommand {
    /// `create_clock`.
    CreateClock(CreateClock),
    /// `set_input_delay`.
    SetInputDelay(PortDelay),
    /// `set_output_delay`.
    SetOutputDelay(PortDelay),
    /// `set_input_transition`.
    SetInputTransition(SetInputTransition),
    /// `set_load`.
    SetLoad(SetLoad),
    /// `set_false_path`.
    SetFalsePath(SetFalsePath),
}

impl SdcCommand {
    /// The SDC command word this variant corresponds to.
    pub fn keyword(&self) -> &'static str {
        match self {
            SdcCommand::CreateClock(_) => "create_clock",
            SdcCommand::SetInputDelay(_) => "set_input_delay",
            SdcCommand::SetOutputDelay(_) => "set_output_delay",
            SdcCommand::SetInputTransition(_) => "set_input_transition",
            SdcCommand::SetLoad(_) => "set_load",
            SdcCommand::SetFalsePath(_) => "set_false_path",
        }
    }
}

impl fmt::Display for SdcCommand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A parsed SDC file: the command sequence, in source order (order matters
/// — later commands override earlier ones on the same port).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SdcFile {
    /// Commands in source order.
    pub commands: Vec<SdcCommand>,
}

impl SdcFile {
    /// All `create_clock` commands, in source order.
    pub fn clocks(&self) -> impl Iterator<Item = &CreateClock> {
        self.commands.iter().filter_map(|c| match c {
            SdcCommand::CreateClock(cc) => Some(cc),
            _ => None,
        })
    }
}
