//! SDC-subset constraints for per-pin timing windows.
//!
//! Commercial STA runs are driven by constraint sets (SDC — Synopsys
//! Design Constraints), not by one uniform arrival/required pair. This
//! crate closes that gap for the `noisy-sta` workspace: switching windows
//! and slacks can now come from a real constraint file, which is exactly
//! where the paper's temporal-correlation aggressor filtering earns its
//! keep — per-pin `[min, max]` arrival windows change which aggressors
//! can align with a victim.
//!
//! * [`parse_sdc`] — lexer/parser for the SDC subset that matters to a
//!   combinational timing engine: `create_clock`, `set_input_delay`
//!   (`-min`/`-max`/`-clock`), `set_output_delay`, `set_input_transition`,
//!   `set_load`, and `set_false_path -from/-to`.
//! * [`write_sdc`] — canonical serializer; `parse ∘ write` is the
//!   identity on the model (golden-file round trips, mirroring
//!   `nsta-parasitics`).
//! * [`bind_sdc`] — resolves port names against a
//!   [`Design`](nsta_sta::Design) and emits the
//!   [`BoundaryConditions`](nsta_sta::BoundaryConditions) every analysis
//!   entry point accepts: per-input `{min_arrival, max_arrival, slew}`,
//!   per-output `{required, load}` (slack against the clock period), and
//!   the false-path pairs excluded from the worst slack. Binding is
//!   strict — unknown ports, duplicate clocks and false paths on missing
//!   nets are errors.
//!
//! Values are written in the customary SDC library units (ns, pF); the
//! binder scales them to SI.
//!
//! ```
//! use nsta_constraints::{bind_sdc, parse_sdc};
//! use nsta_sta::{verilog::parse_design, Constraints};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let design = parse_design(
//!     "module m (a, b, y); input a, b; output y; wire w;\
//!      INVX1 u1 (.A(a), .Y(w)); INVX1 u2 (.A(w), .Y(y)); endmodule",
//! )?;
//! let sdc = parse_sdc(
//!     "create_clock -name clk -period 2\n\
//!      set_input_delay 0.2 -clock clk -min [get_ports a]\n\
//!      set_input_delay 0.7 -clock clk -max [get_ports a]\n\
//!      set_output_delay 0.4 -clock clk [get_ports y]\n",
//! )?;
//! let bound = bind_sdc(&sdc, &design, &Constraints::default())?;
//! let a = design.find_net("a").expect("port a");
//! let window = bound.boundary.input(a);
//! assert!((window.min_arrival - 0.2e-9).abs() < 1e-18);
//! assert!((window.max_arrival - 0.7e-9).abs() < 1e-18);
//! let y = design.find_net("y").expect("port y");
//! assert!((bound.boundary.output(y).required - 1.6e-9).abs() < 1e-18);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod ast;
mod bind;
mod error;
pub mod lexer;
mod parser;
mod writer;

pub use ast::{
    CreateClock, MinMax, PortDelay, SdcCommand, SdcFile, SetFalsePath, SetInputTransition, SetLoad,
};
pub use bind::{bind_sdc, BoundClock, SdcBinding};
pub use error::SdcError;
pub use parser::parse_sdc;
pub use writer::write_sdc;
