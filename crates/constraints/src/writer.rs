//! Canonical SDC serialization.
//!
//! [`write_sdc`] emits a parsed (or programmatically built) [`SdcFile`]
//! back as SDC text. The output is *canonical*: one command per line,
//! options in fixed order (`-name`/`-period`, value, `-clock`,
//! `-min`/`-max`, ports), object lists always in `[get_ports {...}]`
//! form. Because the AST stores values in the source units (ns/pF) and
//! Rust formats floats as the shortest string that round-trips,
//! `parse ∘ write` is the identity on the model — the invariant the
//! golden-file tests rely on, mirroring `nsta-parasitics`.

use crate::ast::{MinMax, SdcCommand, SdcFile};
use std::fmt::Write as _;

/// A name as the lexer will read it back: quoted when it contains
/// whitespace or a word-terminating character, or when its bare spelling
/// would re-lex as a number (a port legally named `2` or `-0.5`).
fn quoted(name: &str) -> String {
    let has_special = name
        .chars()
        .any(|c| c.is_whitespace() || matches!(c, '[' | ']' | '{' | '}' | '"' | '#' | ';'));
    let numeric_start = name
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | '+' | '-'));
    let lexes_as_number = numeric_start && name.parse::<f64>().is_ok_and(|v| v.is_finite());
    if has_special || lexes_as_number || name.is_empty() {
        format!("\"{name}\"")
    } else {
        name.to_string()
    }
}

fn push_ports(out: &mut String, ports: &[String]) {
    let names: Vec<String> = ports.iter().map(|p| quoted(p)).collect();
    let _ = write!(out, " [get_ports {{{}}}]", names.join(" "));
}

fn push_minmax(out: &mut String, minmax: MinMax) {
    match minmax {
        MinMax::Min => out.push_str(" -min"),
        MinMax::Max => out.push_str(" -max"),
        MinMax::Both => {}
    }
}

/// Serializes `sdc` as canonical SDC text.
pub fn write_sdc(sdc: &SdcFile) -> String {
    let mut out = String::new();
    for cmd in &sdc.commands {
        match cmd {
            SdcCommand::CreateClock(c) => {
                let _ = write!(
                    out,
                    "create_clock -name {} -period {}",
                    quoted(&c.name),
                    c.period
                );
                if !c.ports.is_empty() {
                    push_ports(&mut out, &c.ports);
                }
            }
            SdcCommand::SetInputDelay(d) | SdcCommand::SetOutputDelay(d) => {
                let _ = write!(out, "{} {}", cmd.keyword(), d.delay);
                if let Some(clock) = &d.clock {
                    let _ = write!(out, " -clock {}", quoted(clock));
                }
                push_minmax(&mut out, d.minmax);
                push_ports(&mut out, &d.ports);
            }
            SdcCommand::SetInputTransition(t) => {
                let _ = write!(out, "set_input_transition {}", t.value);
                push_minmax(&mut out, t.minmax);
                push_ports(&mut out, &t.ports);
            }
            SdcCommand::SetLoad(l) => {
                let _ = write!(out, "set_load {}", l.value);
                push_ports(&mut out, &l.ports);
            }
            SdcCommand::SetFalsePath(fp) => {
                out.push_str("set_false_path");
                if !fp.from.is_empty() {
                    out.push_str(" -from");
                    push_ports(&mut out, &fp.from);
                }
                if !fp.to.is_empty() {
                    out.push_str(" -to");
                    push_ports(&mut out, &fp.to);
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sdc;

    #[test]
    fn round_trips_through_the_parser() {
        let src = "create_clock -period 2 [get_ports clk]\n\
                   set_input_delay -min 0.25 -clock clk [get_ports {a b}]\n\
                   set_output_delay 0.4 -clock clk y\n\
                   set_input_transition 0.08 {a}\n\
                   set_load 0.05 y\n\
                   set_false_path -from a -to y\n";
        let first = parse_sdc(src).unwrap();
        let text = write_sdc(&first);
        let second = parse_sdc(&text).unwrap();
        assert_eq!(first, second);
        // Canonical output is a fixed point of write ∘ parse.
        assert_eq!(text, write_sdc(&second));
    }

    #[test]
    fn canonical_form_normalizes_object_lists() {
        let first = parse_sdc("set_load 0.1 y\n").unwrap();
        let text = write_sdc(&first);
        assert_eq!(text, "set_load 0.1 [get_ports {y}]\n");
    }

    #[test]
    fn names_needing_quotes_round_trip() {
        // Quoted (whitespace-bearing) names must come back quoted, or the
        // reparse splits them into two tokens and the AST changes.
        let first = parse_sdc("create_clock -name \"clk core\" -period 2\n").unwrap();
        let text = write_sdc(&first);
        assert_eq!(text, "create_clock -name \"clk core\" -period 2\n");
        assert_eq!(parse_sdc(&text).unwrap(), first);
    }

    #[test]
    fn numeric_port_names_round_trip_quoted() {
        // A port legally named `2` must come back quoted or the reparse
        // lexes it as a number and rejects the port list.
        let first = parse_sdc("set_load 0.1 [get_ports {\"2\"}]\n").unwrap();
        let text = write_sdc(&first);
        assert_eq!(text, "set_load 0.1 [get_ports {\"2\"}]\n");
        assert_eq!(parse_sdc(&text).unwrap(), first);
    }

    #[test]
    fn wildcard_false_paths_keep_their_one_side() {
        let first = parse_sdc("set_false_path -to [get_ports {y z}]\n").unwrap();
        let text = write_sdc(&first);
        assert_eq!(text, "set_false_path -to [get_ports {y z}]\n");
        assert_eq!(parse_sdc(&text).unwrap(), first);
    }
}
