//! SDC parser: token stream → [`SdcFile`].
//!
//! Grammar of the accepted subset (one command per line; `\` continues):
//!
//! ```text
//! create_clock         -name NAME -period NUM [objects]?
//! set_input_delay      NUM (-clock NAME)? (-min|-max)? objects
//! set_output_delay     NUM (-clock NAME)? (-min|-max)? objects
//! set_input_transition NUM (-min|-max)? objects
//! set_load             NUM objects
//! set_false_path       (-from objects)? (-to objects)?   # at least one
//!
//! objects := [get_ports ports] | ports
//! ports   := WORD | { WORD* }
//! ```
//!
//! Options may appear before or after the positional value, as Tcl allows.

use crate::ast::{
    CreateClock, MinMax, PortDelay, SdcCommand, SdcFile, SetFalsePath, SetInputTransition, SetLoad,
};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::SdcError;

struct P {
    toks: Vec<Token>,
    pos: usize,
}

impl P {
    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(1, |t| t.line)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.toks.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, SdcError> {
        Err(SdcError::Parse {
            line: self.line(),
            message: message.into(),
        })
    }

    fn at_command_end(&self) -> bool {
        matches!(self.peek(), None | Some(TokenKind::Newline))
    }

    fn expect_newline(&mut self) -> Result<(), SdcError> {
        match self.bump() {
            None | Some(TokenKind::Newline) => Ok(()),
            Some(other) => {
                self.pos -= 1;
                self.err(format!("unexpected {} at end of command", other.describe()))
            }
        }
    }

    fn word(&mut self, what: &str) -> Result<String, SdcError> {
        match self.bump() {
            Some(TokenKind::Word(w)) => Ok(w),
            other => {
                self.pos -= 1;
                self.err(format!(
                    "expected {what}, found {}",
                    other.map_or("end of file".into(), |t| t.describe())
                ))
            }
        }
    }

    fn number(&mut self, what: &str) -> Result<f64, SdcError> {
        match self.bump() {
            Some(TokenKind::Number(v)) => Ok(v),
            other => {
                self.pos -= 1;
                self.err(format!(
                    "expected {what}, found {}",
                    other.map_or("end of file".into(), |t| t.describe())
                ))
            }
        }
    }

    /// Parses an object list: `[get_ports ports]`, a brace list, or a bare
    /// word. Only `get_ports` is understood inside brackets — the engine
    /// constrains ports, not pins or hierarchical cells.
    fn objects(&mut self) -> Result<Vec<String>, SdcError> {
        match self.peek() {
            Some(TokenKind::LBracket) => {
                self.bump();
                let getter = self.word("an object getter (get_ports)")?;
                if getter != "get_ports" && getter != "get_port" {
                    return self.err(format!("unsupported object getter {getter}"));
                }
                let ports = self.port_list()?;
                match self.bump() {
                    Some(TokenKind::RBracket) => Ok(ports),
                    _ => {
                        self.pos -= 1;
                        self.err("expected ']' after get_ports")
                    }
                }
            }
            Some(TokenKind::LBrace) => self.port_list(),
            Some(TokenKind::Word(_)) => Ok(vec![self.word("a port name")?]),
            _ => self.err("expected an object list"),
        }
    }

    /// A bare word or a `{ word* }` list.
    fn port_list(&mut self) -> Result<Vec<String>, SdcError> {
        match self.peek() {
            Some(TokenKind::LBrace) => {
                self.bump();
                let mut ports = Vec::new();
                loop {
                    match self.peek() {
                        Some(TokenKind::RBrace) => {
                            self.bump();
                            break;
                        }
                        Some(TokenKind::Word(_)) => ports.push(self.word("a port name")?),
                        _ => return self.err("expected a port name or '}'"),
                    }
                }
                Ok(ports)
            }
            _ => Ok(vec![self.word("a port name")?]),
        }
    }

    fn minmax(min: bool, max: bool) -> MinMax {
        match (min, max) {
            (true, false) => MinMax::Min,
            (false, true) => MinMax::Max,
            // `-min -max` together means both, same as neither.
            _ => MinMax::Both,
        }
    }

    fn create_clock(&mut self) -> Result<SdcCommand, SdcError> {
        let mut name = None;
        let mut period = None;
        let mut ports = Vec::new();
        while !self.at_command_end() {
            match self.peek() {
                Some(TokenKind::Word(w)) if w == "-name" => {
                    self.bump();
                    name = Some(self.word("a clock name after -name")?);
                }
                Some(TokenKind::Word(w)) if w == "-period" => {
                    self.bump();
                    period = Some(self.number("a period after -period")?);
                }
                Some(TokenKind::Word(w)) if w.starts_with('-') => {
                    let w = w.clone();
                    return self.err(format!("unsupported create_clock option {w}"));
                }
                _ => {
                    if !ports.is_empty() {
                        return self.err("create_clock given two source-port lists");
                    }
                    ports = self.objects()?;
                }
            }
        }
        let period = match period {
            Some(p) if p > 0.0 => p,
            Some(p) => return Err(SdcError::Semantic(format!("non-positive period {p}"))),
            None => return self.err("create_clock requires -period"),
        };
        let name = match name.or_else(|| ports.first().cloned()) {
            Some(n) => n,
            None => return self.err("create_clock requires -name or a source port"),
        };
        Ok(SdcCommand::CreateClock(CreateClock {
            name,
            period,
            ports,
        }))
    }

    fn port_delay(&mut self, cmd: &str) -> Result<PortDelay, SdcError> {
        let mut delay = None;
        let mut clock = None;
        let mut min = false;
        let mut max = false;
        let mut ports = Vec::new();
        while !self.at_command_end() {
            match self.peek() {
                Some(TokenKind::Word(w)) if w == "-clock" => {
                    self.bump();
                    clock = Some(self.word("a clock name after -clock")?);
                }
                Some(TokenKind::Word(w)) if w == "-min" => {
                    self.bump();
                    min = true;
                }
                Some(TokenKind::Word(w)) if w == "-max" => {
                    self.bump();
                    max = true;
                }
                Some(TokenKind::Word(w)) if w.starts_with('-') => {
                    let w = w.clone();
                    return self.err(format!("unsupported {cmd} option {w}"));
                }
                Some(TokenKind::Number(_)) => {
                    if delay.is_some() {
                        return self.err(format!("{cmd} given two delay values"));
                    }
                    delay = Some(self.number("a delay")?);
                }
                _ => {
                    if !ports.is_empty() {
                        return self.err(format!("{cmd} given two port lists"));
                    }
                    ports = self.objects()?;
                }
            }
        }
        let Some(delay) = delay else {
            return self.err(format!("{cmd} requires a delay value"));
        };
        if ports.is_empty() {
            return self.err(format!("{cmd} requires a port list"));
        }
        Ok(PortDelay {
            delay,
            clock,
            minmax: Self::minmax(min, max),
            ports,
        })
    }

    fn input_transition(&mut self) -> Result<SdcCommand, SdcError> {
        let mut value = None;
        let mut min = false;
        let mut max = false;
        let mut ports = Vec::new();
        while !self.at_command_end() {
            match self.peek() {
                Some(TokenKind::Word(w)) if w == "-min" => {
                    self.bump();
                    min = true;
                }
                Some(TokenKind::Word(w)) if w == "-max" => {
                    self.bump();
                    max = true;
                }
                Some(TokenKind::Word(w)) if w.starts_with('-') => {
                    let w = w.clone();
                    return self.err(format!("unsupported set_input_transition option {w}"));
                }
                Some(TokenKind::Number(_)) => {
                    if value.is_some() {
                        return self.err("set_input_transition given two values");
                    }
                    value = Some(self.number("a transition time")?);
                }
                _ => {
                    if !ports.is_empty() {
                        return self.err("set_input_transition given two port lists");
                    }
                    ports = self.objects()?;
                }
            }
        }
        let Some(value) = value else {
            return self.err("set_input_transition requires a value");
        };
        if value <= 0.0 {
            return Err(SdcError::Semantic(format!(
                "non-positive input transition {value}"
            )));
        }
        if ports.is_empty() {
            return self.err("set_input_transition requires a port list");
        }
        Ok(SdcCommand::SetInputTransition(SetInputTransition {
            value,
            minmax: Self::minmax(min, max),
            ports,
        }))
    }

    fn set_load(&mut self) -> Result<SdcCommand, SdcError> {
        let mut value = None;
        let mut ports = Vec::new();
        while !self.at_command_end() {
            match self.peek() {
                Some(TokenKind::Word(w)) if w.starts_with('-') => {
                    let w = w.clone();
                    return self.err(format!("unsupported set_load option {w}"));
                }
                Some(TokenKind::Number(_)) => {
                    if value.is_some() {
                        return self.err("set_load given two values");
                    }
                    value = Some(self.number("a load value")?);
                }
                _ => {
                    if !ports.is_empty() {
                        return self.err("set_load given two port lists");
                    }
                    ports = self.objects()?;
                }
            }
        }
        let Some(value) = value else {
            return self.err("set_load requires a value");
        };
        if value < 0.0 {
            return Err(SdcError::Semantic(format!("negative load {value}")));
        }
        if ports.is_empty() {
            return self.err("set_load requires a port list");
        }
        Ok(SdcCommand::SetLoad(SetLoad { value, ports }))
    }

    fn false_path(&mut self) -> Result<SdcCommand, SdcError> {
        let mut from = Vec::new();
        let mut to = Vec::new();
        while !self.at_command_end() {
            match self.peek() {
                Some(TokenKind::Word(w)) if w == "-from" => {
                    self.bump();
                    from = self.objects()?;
                }
                Some(TokenKind::Word(w)) if w == "-to" => {
                    self.bump();
                    to = self.objects()?;
                }
                Some(other) => {
                    let d = other.describe();
                    return self.err(format!("unsupported set_false_path argument {d}"));
                }
                None => break,
            }
        }
        if from.is_empty() && to.is_empty() {
            return self.err("set_false_path requires -from and/or -to");
        }
        Ok(SdcCommand::SetFalsePath(SetFalsePath { from, to }))
    }
}

/// Parses SDC text into an [`SdcFile`].
///
/// # Errors
///
/// [`SdcError::Lex`]/[`SdcError::Parse`] with the offending 1-based line;
/// [`SdcError::Semantic`] for syntactically valid but unusable values
/// (non-positive period or transition, negative load).
pub fn parse_sdc(text: &str) -> Result<SdcFile, SdcError> {
    let mut span = nsta_obs::span!("constraints.parse_sdc");
    span.set_arg("bytes", text.len() as f64);
    let mut p = P {
        toks: tokenize(text)?,
        pos: 0,
    };
    let mut commands = Vec::new();
    while let Some(kind) = p.peek() {
        match kind {
            TokenKind::Newline => {
                p.bump();
            }
            TokenKind::Word(w) => {
                let cmd = w.clone();
                p.bump();
                let parsed = match cmd.as_str() {
                    "create_clock" => p.create_clock()?,
                    "set_input_delay" => {
                        SdcCommand::SetInputDelay(p.port_delay("set_input_delay")?)
                    }
                    "set_output_delay" => {
                        SdcCommand::SetOutputDelay(p.port_delay("set_output_delay")?)
                    }
                    "set_input_transition" => p.input_transition()?,
                    "set_load" => p.set_load()?,
                    "set_false_path" => p.false_path()?,
                    other => return p.err(format!("unsupported SDC command {other}")),
                };
                commands.push(parsed);
                p.expect_newline()?;
            }
            other => {
                let d = other.describe();
                return p.err(format!("expected a command, found {d}"));
            }
        }
    }
    Ok(SdcFile { commands })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::MinMax;

    #[test]
    fn full_subset_parses() {
        let sdc = parse_sdc(
            "# constraints\n\
             create_clock -name clk -period 2\n\
             set_input_delay 0.25 -clock clk -min [get_ports {a}]\n\
             set_input_delay 0.5 -clock clk -max [get_ports {a}]\n\
             set_input_delay 0.1 [get_ports {b c}]\n\
             set_output_delay 0.4 -clock clk [get_ports y]\n\
             set_input_transition 0.08 [get_ports {a b}]\n\
             set_load 0.05 [get_ports y]\n\
             set_false_path -from [get_ports a] -to [get_ports y]\n",
        )
        .unwrap();
        assert_eq!(sdc.commands.len(), 8);
        assert_eq!(sdc.clocks().count(), 1);
        let clk = sdc.clocks().next().unwrap();
        assert_eq!(clk.name, "clk");
        assert_eq!(clk.period, 2.0);
        match &sdc.commands[1] {
            SdcCommand::SetInputDelay(d) => {
                assert_eq!(d.delay, 0.25);
                assert_eq!(d.clock.as_deref(), Some("clk"));
                assert_eq!(d.minmax, MinMax::Min);
                assert_eq!(d.ports, vec!["a"]);
            }
            other => panic!("expected set_input_delay, got {other}"),
        }
        match &sdc.commands[3] {
            SdcCommand::SetInputDelay(d) => {
                assert_eq!(d.minmax, MinMax::Both);
                assert_eq!(d.ports, vec!["b", "c"]);
            }
            other => panic!("expected set_input_delay, got {other}"),
        }
        match &sdc.commands[7] {
            SdcCommand::SetFalsePath(fp) => {
                assert_eq!(fp.from, vec!["a"]);
                assert_eq!(fp.to, vec!["y"]);
            }
            other => panic!("expected set_false_path, got {other}"),
        }
    }

    #[test]
    fn options_may_precede_the_value() {
        let sdc = parse_sdc("set_input_delay -min -clock clk 0.3 [get_ports a]").unwrap();
        match &sdc.commands[0] {
            SdcCommand::SetInputDelay(d) => {
                assert_eq!(d.delay, 0.3);
                assert_eq!(d.minmax, MinMax::Min);
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn bare_and_braced_object_lists() {
        let sdc = parse_sdc("set_load 0.1 y\nset_load 0.2 {y z}").unwrap();
        match (&sdc.commands[0], &sdc.commands[1]) {
            (SdcCommand::SetLoad(a), SdcCommand::SetLoad(b)) => {
                assert_eq!(a.ports, vec!["y"]);
                assert_eq!(b.ports, vec!["y", "z"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clock_name_defaults_to_source_port() {
        let sdc = parse_sdc("create_clock -period 1.5 [get_ports clkin]").unwrap();
        let clk = sdc.clocks().next().unwrap();
        assert_eq!(clk.name, "clkin");
        assert_eq!(clk.ports, vec!["clkin"]);
    }

    #[test]
    fn parse_errors_carry_lines() {
        match parse_sdc("create_clock -name c -period 2\nbogus_command x\n") {
            Err(SdcError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error at line 2, got {other:?}"),
        }
        assert!(parse_sdc("set_input_delay [get_ports a]").is_err());
        assert!(parse_sdc("set_input_delay 0.5").is_err());
        assert!(parse_sdc("set_false_path").is_err());
        assert!(parse_sdc("set_load 0.1 [get_clocks a]").is_err());
        // Duplicate positional values/port lists must error, not silently
        // drop half the constraint.
        assert!(parse_sdc("set_input_delay 0.5 [get_ports a] [get_ports b]").is_err());
        assert!(parse_sdc("set_load 0.1 0.2 [get_ports y]").is_err());
        assert!(parse_sdc("set_input_transition 0.1 a b").is_err());
        assert!(parse_sdc("create_clock -name c -period 1 [get_ports a] [get_ports b]").is_err());
    }

    #[test]
    fn semantic_errors() {
        assert!(matches!(
            parse_sdc("create_clock -name c -period 0"),
            Err(SdcError::Semantic(_))
        ));
        assert!(matches!(
            parse_sdc("set_input_transition 0 [get_ports a]"),
            Err(SdcError::Semantic(_))
        ));
        assert!(matches!(
            parse_sdc("set_load -0.5 [get_ports y]"),
            Err(SdcError::Semantic(_))
        ));
    }
}
