//! SDC tokenizer.
//!
//! SDC is a Tcl dialect, but the constraint subset this crate accepts is
//! line-oriented: one command per line, words separated by whitespace,
//! object lists in `[get_ports {...}]` form. The lexer therefore needs
//! only six token kinds: words, numbers, the two bracket pairs, and a
//! newline marker separating commands. `#` comments run to end of line
//! and a trailing `\` continues a command across lines, exactly like Tcl.

use crate::SdcError;

/// One lexical token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token payload.
    pub kind: TokenKind,
    /// 1-based line the token started on.
    pub line: usize,
}

/// Token payloads.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A bare or quoted word: command names, option flags (`-min`),
    /// port and clock names.
    Word(String),
    /// A number (integer or float).
    Number(f64),
    /// `[` — opens a command substitution (`[get_ports ...]`).
    LBracket,
    /// `]`.
    RBracket,
    /// `{` — opens a Tcl list.
    LBrace,
    /// `}`.
    RBrace,
    /// End of a command (one or more newlines collapse to one token).
    Newline,
}

impl TokenKind {
    /// Short human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Word(w) => w.clone(),
            TokenKind::Number(v) => format!("{v}"),
            TokenKind::LBracket => "[".into(),
            TokenKind::RBracket => "]".into(),
            TokenKind::LBrace => "{".into(),
            TokenKind::RBrace => "}".into(),
            TokenKind::Newline => "end of command".into(),
        }
    }
}

/// Characters that terminate a bare word.
fn is_word_end(c: char) -> bool {
    c.is_whitespace() || matches!(c, '[' | ']' | '{' | '}' | '"' | '#' | ';')
}

/// Tokenizes SDC text.
///
/// # Errors
///
/// [`SdcError::Lex`] on unterminated strings.
pub fn tokenize(text: &str) -> Result<Vec<Token>, SdcError> {
    let mut tokens: Vec<Token> = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    let mut line = 1usize;
    let push = |kind: TokenKind, line: usize, tokens: &mut Vec<Token>| {
        // Collapse newline runs; drop leading newlines entirely.
        if kind == TokenKind::Newline && tokens.last().is_none_or(|t| t.kind == TokenKind::Newline)
        {
            return;
        }
        tokens.push(Token { kind, line });
    };
    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                push(TokenKind::Newline, line, &mut tokens);
                line += 1;
                i += 1;
            }
            ';' => {
                // Tcl also separates commands with semicolons.
                push(TokenKind::Newline, line, &mut tokens);
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '\\' if chars.get(i + 1) == Some(&'\n') => {
                // Line continuation: swallow the newline, no separator.
                line += 1;
                i += 2;
            }
            '[' => {
                push(TokenKind::LBracket, line, &mut tokens);
                i += 1;
            }
            ']' => {
                push(TokenKind::RBracket, line, &mut tokens);
                i += 1;
            }
            '{' => {
                push(TokenKind::LBrace, line, &mut tokens);
                i += 1;
            }
            '}' => {
                push(TokenKind::RBrace, line, &mut tokens);
                i += 1;
            }
            '"' => {
                let start_line = line;
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\n') => {
                            line += 1;
                            s.push('\n');
                            i += 1;
                        }
                        Some(&nc) => {
                            s.push(nc);
                            i += 1;
                        }
                        None => {
                            return Err(SdcError::Lex {
                                line: start_line,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                push(TokenKind::Word(s), start_line, &mut tokens);
            }
            _ => {
                let start = i;
                while i < chars.len() && !is_word_end(chars[i]) {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                // Option flags (`-min`) stay words; `-0.5` is a number.
                // Words like `inf`/`nan` that f64 happens to accept are
                // legal port names, so only digit/sign/point-led spellings
                // of finite values become numbers.
                let numeric_start = word
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | '+' | '-'));
                let kind = match word.parse::<f64>() {
                    Ok(v) if numeric_start && v.is_finite() => TokenKind::Number(v),
                    _ => TokenKind::Word(word),
                };
                push(kind, line, &mut tokens);
            }
        }
    }
    // A trailing newline token simplifies the parser's command loop.
    push(TokenKind::Newline, line, &mut tokens);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<TokenKind> {
        tokenize(text)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn words_numbers_and_brackets() {
        assert_eq!(
            kinds("set_input_delay 0.5 -clock clk [get_ports {a b}]"),
            vec![
                TokenKind::Word("set_input_delay".into()),
                TokenKind::Number(0.5),
                TokenKind::Word("-clock".into()),
                TokenKind::Word("clk".into()),
                TokenKind::LBracket,
                TokenKind::Word("get_ports".into()),
                TokenKind::LBrace,
                TokenKind::Word("a".into()),
                TokenKind::Word("b".into()),
                TokenKind::RBrace,
                TokenKind::RBracket,
                TokenKind::Newline,
            ]
        );
    }

    #[test]
    fn flags_are_words_but_negative_values_are_numbers() {
        assert_eq!(
            kinds("-min -0.25"),
            vec![
                TokenKind::Word("-min".into()),
                TokenKind::Number(-0.25),
                TokenKind::Newline,
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_collapse() {
        let k = kinds("# header\n\n\ncreate_clock -period 2\n# tail\n");
        assert_eq!(
            k,
            vec![
                TokenKind::Word("create_clock".into()),
                TokenKind::Word("-period".into()),
                TokenKind::Number(2.0),
                TokenKind::Newline,
            ]
        );
    }

    #[test]
    fn continuations_and_semicolons() {
        let k = kinds("set_load \\\n 0.1 x; set_load 0.2 y");
        assert_eq!(
            k,
            vec![
                TokenKind::Word("set_load".into()),
                TokenKind::Number(0.1),
                TokenKind::Word("x".into()),
                TokenKind::Newline,
                TokenKind::Word("set_load".into()),
                TokenKind::Number(0.2),
                TokenKind::Word("y".into()),
                TokenKind::Newline,
            ]
        );
    }

    #[test]
    fn quoted_names_and_line_tracking() {
        let toks = tokenize("create_clock -name \"clk core\"\nset_load 1 y").unwrap();
        assert_eq!(toks[2].kind, TokenKind::Word("clk core".into()));
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[4].line, 2);
    }

    #[test]
    fn float_spellings_stay_port_names() {
        // `inf`, `nan` & co. are legal Verilog identifiers; only
        // digit/sign/point-led finite spellings become numbers.
        assert_eq!(
            kinds("set_load 0.1 inf"),
            vec![
                TokenKind::Word("set_load".into()),
                TokenKind::Number(0.1),
                TokenKind::Word("inf".into()),
                TokenKind::Newline,
            ]
        );
        assert_eq!(kinds("nan")[0], TokenKind::Word("nan".into()));
        assert_eq!(kinds("-inf")[0], TokenKind::Word("-inf".into()));
        assert_eq!(kinds("infinity")[0], TokenKind::Word("infinity".into()));
        assert_eq!(kinds("+0.5")[0], TokenKind::Number(0.5));
    }

    #[test]
    fn lex_errors() {
        assert!(matches!(
            tokenize("create_clock -name \"oops"),
            Err(SdcError::Lex { .. })
        ));
    }
}
