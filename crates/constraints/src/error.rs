use std::fmt;

/// Error type for SDC lexing, parsing and design binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SdcError {
    /// Lexical error with a 1-based line number.
    Lex {
        /// Line of the offending character.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error with a 1-based line number.
    Parse {
        /// Line of the offending token.
        line: usize,
        /// What the parser expected/found.
        message: String,
    },
    /// The file was syntactically valid SDC but semantically unusable
    /// (non-positive period, min delay above max…).
    Semantic(String),
    /// Resolving the constraint set against a design failed (unknown
    /// port, duplicate clock, false path on a missing net…).
    Bind(String),
}

impl fmt::Display for SdcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdcError::Lex { line, message } => write!(f, "lex error at line {line}: {message}"),
            SdcError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            SdcError::Semantic(m) => write!(f, "semantic error: {m}"),
            SdcError::Bind(m) => write!(f, "bind error: {m}"),
        }
    }
}

impl std::error::Error for SdcError {}
