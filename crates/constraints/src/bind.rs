//! Binding a parsed SDC onto a timing [`Design`].
//!
//! [`bind_sdc`] resolves every port name against the design and folds the
//! command sequence into the [`BoundaryConditions`] the STA engine
//! consumes:
//!
//! * `create_clock` fixes the period slacks are computed against; with a
//!   clock present, every output defaults to `required = period` and
//!   `set_output_delay D` tightens that to `period − D`;
//! * `set_input_delay -min/-max` seeds each input's arrival **window**
//!   `[min, max]` — the per-pin ranges the crosstalk window filter prunes
//!   against (a plain `set_input_delay` collapses the window to a point);
//! * `set_input_transition` / `set_load` override the port slew and the
//!   external output load;
//! * `set_false_path -from/-to` expands to [`FalsePath`] pairs excluded
//!   from required-time propagation.
//!
//! Units: SDC carries no unit declarations — values are in the customary
//! library units, **ns** for time and **pF** for capacitance, and the
//! binder scales them to SI here (the AST keeps source units so the writer
//! round-trips exactly).
//!
//! Binding is strict: unknown ports, ports of the wrong direction,
//! duplicate clock names, unresolvable `-clock` references and false
//! paths on missing nets are errors, not warnings — a constraint that
//! silently fails to apply is worse than no constraint at all.

use crate::ast::{PortDelay, SdcCommand, SdcFile};
use crate::SdcError;
use nsta_sta::{
    BoundaryConditions, Constraints, Design, FalsePath, InputBoundary, NetId, OutputBoundary,
};
use std::collections::HashMap;

/// SDC time unit (ns) in seconds.
const TIME_UNIT: f64 = 1e-9;
/// SDC capacitance unit (pF) in farads.
const CAP_UNIT: f64 = 1e-12;

/// One resolved clock.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundClock {
    /// Clock name.
    pub name: String,
    /// Period (s).
    pub period: f64,
}

/// Result of binding an SDC file onto a design.
#[derive(Debug, Clone, PartialEq)]
pub struct SdcBinding {
    /// The resolved per-pin boundary conditions.
    pub boundary: BoundaryConditions,
    /// Clocks in declaration order (periods in seconds).
    pub clocks: Vec<BoundClock>,
}

impl SdcBinding {
    /// The period of the primary (first-declared) clock, if any (s).
    pub fn clock_period(&self) -> Option<f64> {
        self.clocks.first().map(|c| c.period)
    }
}

fn resolve_input(design: &Design, name: &str, cmd: &str) -> Result<NetId, SdcError> {
    let net = design
        .find_net(name)
        .ok_or_else(|| SdcError::Bind(format!("{cmd}: unknown port {name}")))?;
    if !design.inputs().contains(&net) {
        return Err(SdcError::Bind(format!(
            "{cmd}: port {name} is not a primary input"
        )));
    }
    Ok(net)
}

fn resolve_output(design: &Design, name: &str, cmd: &str) -> Result<NetId, SdcError> {
    let net = design
        .find_net(name)
        .ok_or_else(|| SdcError::Bind(format!("{cmd}: unknown port {name}")))?;
    if !design.outputs().contains(&net) {
        return Err(SdcError::Bind(format!(
            "{cmd}: port {name} is not a primary output"
        )));
    }
    Ok(net)
}

fn resolve_clock<'a>(
    clocks: &'a [BoundClock],
    delay: &PortDelay,
    cmd: &str,
) -> Result<Option<&'a BoundClock>, SdcError> {
    match &delay.clock {
        Some(name) => clocks
            .iter()
            .find(|c| &c.name == name)
            .map(Some)
            .ok_or_else(|| SdcError::Bind(format!("{cmd}: unknown clock {name}"))),
        None => match clocks {
            [] => Ok(None),
            [only] => Ok(Some(only)),
            _ => Err(SdcError::Bind(format!(
                "{cmd}: -clock required when several clocks exist"
            ))),
        },
    }
}

/// Resolves `sdc` against `design`, producing the boundary conditions of
/// the run. `defaults` fills whatever the constraint set leaves open: the
/// slew of inputs without `set_input_transition` and the load of outputs
/// without `set_load`. Unconstrained inputs arrive at t = 0; outputs are
/// required at the clock period when a clock exists and stay genuinely
/// unconstrained (`required = +inf`) otherwise — `defaults`'
/// `required_at_outputs` is deliberately **not** used, so an SDC without
/// clocks reports `unconstrained` instead of inheriting a fake budget.
///
/// # Errors
///
/// [`SdcError::Bind`] on unknown/misdirected ports, duplicate clock
/// names, unresolvable `-clock` references, `set_output_delay` without
/// any clock, false paths on missing nets, and inverted arrival windows
/// (min delay above max).
pub fn bind_sdc(
    sdc: &SdcFile,
    design: &Design,
    defaults: &Constraints,
) -> Result<SdcBinding, SdcError> {
    let mut span = nsta_obs::span!("constraints.bind_sdc");
    span.set_arg("commands", sdc.commands.len() as f64);
    // Pass 1: clocks (so later commands can reference them regardless of
    // declaration order).
    let mut clocks: Vec<BoundClock> = Vec::new();
    for clock in sdc.clocks() {
        if clocks.iter().any(|c| c.name == clock.name) {
            return Err(SdcError::Bind(format!("duplicate clock {}", clock.name)));
        }
        // Source ports must be input ports when named (virtual clocks
        // carry none) — same strictness as every other port reference.
        for port in &clock.ports {
            resolve_input(design, port, "create_clock")?;
        }
        clocks.push(BoundClock {
            name: clock.name.clone(),
            period: clock.period * TIME_UNIT,
        });
    }

    let default_input = InputBoundary::point(0.0, defaults.input_slew);
    let default_output = match clocks.first() {
        Some(clock) => OutputBoundary {
            required: clock.period,
            load: defaults.output_load,
        },
        None => OutputBoundary::unconstrained(defaults.output_load),
    };

    // Pass 2: fold the command sequence (source order — later commands
    // override earlier ones on the same port and corner). The flags track
    // which corners were explicitly constrained so a lone `-min`/`-max`
    // can widen the untouched corner instead of inverting the window.
    struct WorkInput {
        b: InputBoundary,
        min_set: bool,
        max_set: bool,
    }
    let mut inputs: HashMap<NetId, WorkInput> = HashMap::new();
    let mut outputs: HashMap<NetId, OutputBoundary> = HashMap::new();
    let mut false_paths: Vec<FalsePath> = Vec::new();
    for cmd in &sdc.commands {
        match cmd {
            SdcCommand::CreateClock(_) => {} // handled in pass 1
            SdcCommand::SetInputDelay(d) => {
                // -clock references must resolve even though the input
                // arrival is relative to the edge at t = 0 either way.
                resolve_clock(&clocks, d, "set_input_delay")?;
                for port in &d.ports {
                    let net = resolve_input(design, port, "set_input_delay")?;
                    let w = inputs.entry(net).or_insert(WorkInput {
                        b: default_input,
                        min_set: false,
                        max_set: false,
                    });
                    let arrival = d.delay * TIME_UNIT;
                    if d.minmax.covers_min() {
                        w.b.min_arrival = arrival;
                        w.min_set = true;
                    }
                    if d.minmax.covers_max() {
                        w.b.max_arrival = arrival;
                        w.max_set = true;
                    }
                }
            }
            SdcCommand::SetOutputDelay(d) => {
                let clock = resolve_clock(&clocks, d, "set_output_delay")?
                    .ok_or_else(|| SdcError::Bind("set_output_delay requires a clock".into()))?;
                for port in &d.ports {
                    let net = resolve_output(design, port, "set_output_delay")?;
                    let b = outputs.entry(net).or_insert(default_output);
                    // The external path consumes `delay` of the period, so
                    // data is required `delay` before the capturing edge.
                    // Setup analysis uses the max corner; `-min` variants
                    // describe the hold corner the engine does not check.
                    if d.minmax.covers_max() {
                        b.required = clock.period - d.delay * TIME_UNIT;
                    }
                }
            }
            SdcCommand::SetInputTransition(t) => {
                for port in &t.ports {
                    // Ports resolve (strict binding) even when the value
                    // is then discarded as hold-corner data: the engine
                    // keeps one slew per pin and sweeps the setup (max)
                    // corner, so a `-min`-only transition must NOT be
                    // absorbed — a fast min-corner slew would silently
                    // shrink setup arrivals.
                    let net = resolve_input(design, port, "set_input_transition")?;
                    if !t.minmax.covers_max() {
                        continue;
                    }
                    let w = inputs.entry(net).or_insert(WorkInput {
                        b: default_input,
                        min_set: false,
                        max_set: false,
                    });
                    w.b.slew = t.value * TIME_UNIT;
                }
            }
            SdcCommand::SetLoad(l) => {
                for port in &l.ports {
                    let net = resolve_output(design, port, "set_load")?;
                    let b = outputs.entry(net).or_insert(default_output);
                    b.load = l.value * CAP_UNIT;
                }
            }
            SdcCommand::SetFalsePath(fp) => {
                let from: Vec<Option<NetId>> = if fp.from.is_empty() {
                    vec![None]
                } else {
                    fp.from
                        .iter()
                        .map(|p| resolve_input(design, p, "set_false_path -from").map(Some))
                        .collect::<Result<_, _>>()?
                };
                let to: Vec<Option<NetId>> = if fp.to.is_empty() {
                    vec![None]
                } else {
                    fp.to
                        .iter()
                        .map(|p| resolve_output(design, p, "set_false_path -to").map(Some))
                        .collect::<Result<_, _>>()?
                };
                for &f in &from {
                    for &t in &to {
                        false_paths.push(FalsePath { from: f, to: t });
                    }
                }
            }
        }
    }

    // Widen corners never explicitly constrained, then reject windows the
    // user genuinely inverted: a min/max sweep cannot be seeded from an
    // empty arrival window.
    for (&net, w) in &mut inputs {
        if !w.max_set {
            w.b.max_arrival = w.b.max_arrival.max(w.b.min_arrival);
        }
        if !w.min_set {
            w.b.min_arrival = w.b.min_arrival.min(w.b.max_arrival);
        }
        if !(w.b.min_arrival <= w.b.max_arrival) {
            return Err(SdcError::Bind(format!(
                "input {} has min arrival {} above max arrival {}",
                design.net_name(net),
                w.b.min_arrival,
                w.b.max_arrival
            )));
        }
    }

    let mut boundary = BoundaryConditions::new(default_input, default_output);
    if let Some(clock) = clocks.first() {
        boundary.set_clock_period(clock.period);
    }
    for (net, w) in inputs {
        boundary.set_input(net, w.b);
    }
    for (net, b) in outputs {
        boundary.set_output(net, b);
    }
    for fp in false_paths {
        boundary.add_false_path(fp);
    }
    Ok(SdcBinding { boundary, clocks })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sdc;

    fn design() -> Design {
        let mut d = Design::new("m");
        let a = d.net("a");
        let b = d.net("b");
        let y = d.net("y");
        let z = d.net("z");
        d.net("internal");
        d.mark_input(a);
        d.mark_input(b);
        d.mark_output(y);
        d.mark_output(z);
        d
    }

    fn bind(src: &str) -> Result<SdcBinding, SdcError> {
        bind_sdc(&parse_sdc(src).unwrap(), &design(), &Constraints::default())
    }

    #[test]
    fn per_pin_windows_and_requirements() {
        let bound = bind(
            "create_clock -name clk -period 2\n\
             set_input_delay 0.25 -clock clk -min [get_ports a]\n\
             set_input_delay 0.6 -clock clk -max [get_ports a]\n\
             set_input_transition 0.08 [get_ports a]\n\
             set_output_delay 0.4 -clock clk [get_ports y]\n\
             set_load 0.05 [get_ports y]\n",
        )
        .unwrap();
        assert_eq!(bound.clock_period(), Some(2e-9));
        let d = design();
        let a = bound.boundary.input(d.find_net("a").unwrap());
        assert!((a.min_arrival - 0.25e-9).abs() < 1e-18);
        assert!((a.max_arrival - 0.6e-9).abs() < 1e-18);
        assert!((a.slew - 0.08e-9).abs() < 1e-18);
        // Unreferenced input keeps the zero-point default.
        let b = bound.boundary.input(d.find_net("b").unwrap());
        assert_eq!(b.min_arrival, 0.0);
        assert_eq!(b.max_arrival, 0.0);
        // Output y: required = period − output delay; load from set_load.
        let y = bound.boundary.output(d.find_net("y").unwrap());
        assert!((y.required - 1.6e-9).abs() < 1e-18);
        assert!((y.load - 0.05e-12).abs() < 1e-24);
        // Output z: required defaults to the full period.
        let z = bound.boundary.output(d.find_net("z").unwrap());
        assert!((z.required - 2e-9).abs() < 1e-18);
    }

    #[test]
    fn min_corner_transition_does_not_shrink_the_setup_slew() {
        // `-min` transitions describe the hold corner; absorbing one into
        // the engine's single (setup) slew would shrink arrivals.
        let bound = bind(
            "set_input_transition 0.3 -max [get_ports a]\n\
             set_input_transition 0.05 -min [get_ports a]\n",
        )
        .unwrap();
        let d = design();
        let a = bound.boundary.input(d.find_net("a").unwrap());
        assert!((a.slew - 0.3e-9).abs() < 1e-18, "setup slew kept: {a:?}");
    }

    #[test]
    fn min_corner_transition_still_resolves_its_ports() {
        // Strict binding: the port reference must resolve even though the
        // hold-corner value itself is discarded.
        assert!(matches!(
            bind("set_input_transition 0.05 -min [get_ports ghost]\n"),
            Err(SdcError::Bind(_))
        ));
        assert!(matches!(
            bind("set_input_transition 0.05 -min [get_ports y]\n"),
            Err(SdcError::Bind(_))
        ));
    }

    #[test]
    fn clock_source_must_be_an_input_port() {
        assert!(matches!(
            bind("create_clock -name clk -period 1 [get_ports internal]\n"),
            Err(SdcError::Bind(_))
        ));
        assert!(matches!(
            bind("create_clock -name clk -period 1 [get_ports y]\n"),
            Err(SdcError::Bind(_))
        ));
    }

    #[test]
    fn no_clock_leaves_outputs_unconstrained() {
        let bound = bind("set_input_delay 0.1 [get_ports a]\n").unwrap();
        let d = design();
        let y = bound.boundary.output(d.find_net("y").unwrap());
        assert!(y.required.is_infinite());
        assert_eq!(bound.clock_period(), None);
    }

    #[test]
    fn false_paths_expand_to_pairs() {
        let bound = bind(
            "create_clock -name clk -period 2\n\
             set_false_path -from [get_ports {a b}] -to [get_ports y]\n\
             set_false_path -to [get_ports z]\n",
        )
        .unwrap();
        let d = design();
        let a = d.find_net("a").unwrap();
        let b = d.find_net("b").unwrap();
        let y = d.find_net("y").unwrap();
        let z = d.find_net("z").unwrap();
        let fps = bound.boundary.false_paths();
        assert_eq!(fps.len(), 3);
        assert!(fps.contains(&FalsePath {
            from: Some(a),
            to: Some(y)
        }));
        assert!(fps.contains(&FalsePath {
            from: Some(b),
            to: Some(y)
        }));
        assert!(fps.contains(&FalsePath {
            from: None,
            to: Some(z)
        }));
    }

    #[test]
    fn unknown_port_is_a_bind_error() {
        for src in [
            "set_input_delay 0.1 [get_ports nope]\n",
            "set_load 0.1 [get_ports nope]\n",
            "create_clock -name c -period 1 [get_ports nope]\n",
        ] {
            assert!(
                matches!(bind(src), Err(SdcError::Bind(_))),
                "expected bind error for {src}"
            );
        }
    }

    #[test]
    fn wrong_direction_is_a_bind_error() {
        // y is an output; a is an input; `internal` is neither.
        assert!(matches!(
            bind("set_input_delay 0.1 [get_ports y]\n"),
            Err(SdcError::Bind(_))
        ));
        assert!(matches!(
            bind("create_clock -name c -period 1\nset_output_delay 0.1 [get_ports a]\n"),
            Err(SdcError::Bind(_))
        ));
        assert!(matches!(
            bind("set_input_delay 0.1 [get_ports internal]\n"),
            Err(SdcError::Bind(_))
        ));
    }

    #[test]
    fn duplicate_clock_is_a_bind_error() {
        assert!(matches!(
            bind("create_clock -name clk -period 1\ncreate_clock -name clk -period 2\n"),
            Err(SdcError::Bind(_))
        ));
    }

    #[test]
    fn false_path_on_missing_net_is_a_bind_error() {
        assert!(matches!(
            bind("set_false_path -from [get_ports ghost] -to [get_ports y]\n"),
            Err(SdcError::Bind(_))
        ));
        assert!(matches!(
            bind("set_false_path -from [get_ports a] -to [get_ports ghost]\n"),
            Err(SdcError::Bind(_))
        ));
    }

    #[test]
    fn unknown_or_ambiguous_clock_references() {
        assert!(matches!(
            bind("create_clock -name clk -period 1\nset_input_delay 0.1 -clock other [get_ports a]\n"),
            Err(SdcError::Bind(_))
        ));
        assert!(matches!(
            bind("set_output_delay 0.1 [get_ports y]\n"),
            Err(SdcError::Bind(_))
        ));
        assert!(matches!(
            bind(
                "create_clock -name c1 -period 1\ncreate_clock -name c2 -period 2\n\
                 set_output_delay 0.1 [get_ports y]\n"
            ),
            Err(SdcError::Bind(_))
        ));
    }

    #[test]
    fn inverted_window_is_a_bind_error() {
        assert!(matches!(
            bind(
                "set_input_delay 0.5 -min [get_ports a]\n\
                 set_input_delay 0.2 -max [get_ports a]\n"
            ),
            Err(SdcError::Bind(_))
        ));
    }
}
