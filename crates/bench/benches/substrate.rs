//! Micro-benchmarks of the simulation substrate: linear and nonlinear
//! transient engines, LU kernels and the Liberty parser.
//!
//! Run with `cargo bench -p nsta-bench --bench substrate`.

use nsta_bench::microbench::bench;
use nsta_circuit::{Circuit, CoupledLines, RcLineSpec, TransientOptions};
use nsta_numeric::{DenseMatrix, LuFactors};
use nsta_spice::{cells, Netlist, Process, SimOptions};
use nsta_waveform::Waveform;

fn bench_lu() {
    for n in [8usize, 32, 64] {
        let mut a = DenseMatrix::zeros(n, n);
        let mut seed = 0x12345678u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        for r in 0..n {
            for cc in 0..n {
                a.set(r, cc, next());
            }
            a.add(r, r, n as f64);
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        bench(&format!("lu/factor_solve_{n}"), || {
            let lu = LuFactors::factor(&a).expect("well conditioned");
            lu.solve(&b).expect("solve")
        });
    }
}

fn bench_linear_transient() {
    bench("linear_coupled_lines_2ns", || {
        let mut ckt = Circuit::new();
        let a_in = ckt.node("a");
        let v_in = ckt.node("v");
        let edge =
            Waveform::new(vec![0.0, 0.5e-9, 0.7e-9, 2e-9], vec![0.0, 0.0, 1.2, 1.2]).expect("edge");
        ckt.thevenin_driver(a_in, edge, 200.0).expect("driver");
        ckt.thevenin_driver(
            v_in,
            Waveform::constant(0.0, 0.0, 2e-9).expect("flat"),
            200.0,
        )
        .expect("driver");
        let bundle = CoupledLines::new(RcLineSpec::figure1(), 2, 100e-15).expect("bundle");
        let far = bundle.build(&mut ckt, &[a_in, v_in], "w").expect("build");
        let res = ckt
            .run_transient(TransientOptions::new(0.0, 2e-9, 2e-12).expect("opts"))
            .expect("run");
        res.voltage(far[1]).expect("trace")
    });
}

fn bench_spice_inverter() {
    bench("spice_inverter_2ns", || {
        let proc = Process::c013();
        let mut net = Netlist::new(proc.vdd);
        let inp = net.node("in");
        let out = net.node("out");
        cells::add_inverter(&mut net, &proc, 4.0, inp, out, "u1").expect("cell");
        cells::add_load_cap(&mut net, out, 20e-15).expect("load");
        let ramp = Waveform::new(vec![0.0, 0.5e-9, 0.65e-9, 2e-9], vec![0.0, 0.0, 1.2, 1.2])
            .expect("ramp");
        net.vsource(inp, ramp).expect("source");
        let res = net
            .run_transient(SimOptions::new(0.0, 2e-9, 2e-12).expect("opts"))
            .expect("run");
        res.voltage(out).expect("trace")
    });
}

fn bench_liberty_parse() {
    // A realistic library text produced by the serializer (constructed
    // once, outside the timed loop).
    use nsta_liberty::{Cell, Direction, Library, NldmTable, Pin, TimingArc, TimingSense};
    let table = NldmTable::new(
        vec![30e-12, 60e-12, 120e-12, 240e-12, 480e-12],
        vec![2e-15, 5e-15, 10e-15, 20e-15, 40e-15],
        (0..25).map(|i| 20e-12 + i as f64 * 3e-12).collect(),
    )
    .expect("table");
    let arc = TimingArc {
        related_pin: "A".into(),
        sense: TimingSense::NegativeUnate,
        cell_rise: table.clone(),
        rise_transition: table.clone(),
        cell_fall: table.clone(),
        fall_transition: table,
    };
    let mut lib = Library::new("bench", 1.2);
    for i in 0..20 {
        lib.push_cell(Cell {
            name: format!("INVX{i}"),
            area: 1.0,
            pins: vec![
                Pin {
                    name: "A".into(),
                    direction: Direction::Input,
                    capacitance: 5e-15,
                    function: None,
                    timing: vec![],
                },
                Pin {
                    name: "Y".into(),
                    direction: Direction::Output,
                    capacitance: 0.0,
                    function: Some("!A".into()),
                    timing: vec![arc.clone()],
                },
            ],
        });
    }
    let text = lib.to_liberty();
    bench("liberty_parse_20_cells", || {
        nsta_liberty::parse_library(&text).expect("parse")
    });
}

fn main() {
    bench_lu();
    nsta_bench::microbench::bench_solver_backends();
    bench_linear_transient();
    bench_spice_inverter();
    bench_liberty_parse();
}
