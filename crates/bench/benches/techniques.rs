//! Micro-benchmarks of the equivalent-waveform techniques (Section 4.2's
//! measurement, statistically sampled).
//!
//! Run with `cargo bench -p nsta-bench --bench techniques`.

use nsta_bench::microbench::bench;
use nsta_waveform::{SaturatedRamp, Thresholds};
use sgdp::gate::{AnalyticInverterGate, GateModel};
use sgdp::{MethodKind, PropagationContext};

/// A representative noisy context built once (analytic gate keeps the
/// setup deterministic; the timed region is exactly the reduction step).
fn make_context() -> PropagationContext {
    let th = Thresholds::cmos(1.2);
    let gate = AnalyticInverterGate::fast(th);
    let clean = SaturatedRamp::with_slew(1.0e-9, 150e-12, th, true).expect("ramp");
    let clean_wave = clean.to_waveform(0.0, 3.0e-9, 1e-12).expect("waveform");
    let noisy = clean_wave
        .with_triangular_pulse(1.05e-9, 150e-12, -0.45)
        .expect("glitch")
        .with_triangular_pulse(1.35e-9, 120e-12, -0.25)
        .expect("second glitch");
    let out = gate.response(&clean_wave).expect("noiseless output");
    PropagationContext::new(clean_wave, noisy, Some(out), th).expect("context")
}

fn bench_methods(ctx: &PropagationContext) {
    for method in MethodKind::all() {
        // Validate once so failures surface as panics, not timing noise.
        method
            .equivalent(ctx)
            .expect("technique succeeds on the benchmark case");
        bench(&format!("techniques/{}", method.name()), || {
            method.equivalent(ctx).expect("ok")
        });
    }
}

fn bench_sgdp_sampling(base: &PropagationContext) {
    for p in [9usize, 17, 35, 70, 140] {
        let ctx = base.clone().with_samples(p).expect("valid P");
        bench(&format!("sgdp_sampling/{p}"), || {
            MethodKind::Sgdp.equivalent(&ctx).expect("ok")
        });
    }
}

fn main() {
    let ctx = make_context();
    bench_methods(&ctx);
    bench_sgdp_sampling(&ctx);
}
