//! Criterion micro-benchmarks of the equivalent-waveform techniques
//! (Section 4.2's measurement, statistically sampled).
//!
//! Run with `cargo bench -p nsta-bench --bench techniques`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nsta_waveform::{SaturatedRamp, Thresholds};
use sgdp::gate::{AnalyticInverterGate, GateModel};
use sgdp::{MethodKind, PropagationContext};

/// A representative noisy context built once (analytic gate keeps the
/// setup deterministic; the timed region is exactly the reduction step).
fn make_context() -> PropagationContext {
    let th = Thresholds::cmos(1.2);
    let gate = AnalyticInverterGate::fast(th);
    let clean = SaturatedRamp::with_slew(1.0e-9, 150e-12, th, true).expect("ramp");
    let clean_wave = clean.to_waveform(0.0, 3.0e-9, 1e-12).expect("waveform");
    let noisy = clean_wave
        .with_triangular_pulse(1.05e-9, 150e-12, -0.45)
        .expect("glitch")
        .with_triangular_pulse(1.35e-9, 120e-12, -0.25)
        .expect("second glitch");
    let out = gate.response(&clean_wave).expect("noiseless output");
    PropagationContext::new(clean_wave, noisy, Some(out), th).expect("context")
}

fn bench_methods(c: &mut Criterion) {
    let ctx = make_context();
    let mut group = c.benchmark_group("techniques");
    for method in MethodKind::all() {
        // Validate once so failures surface as panics, not timing noise.
        method.equivalent(&ctx).expect("technique succeeds on the benchmark case");
        group.bench_function(method.name(), |b| {
            b.iter(|| std::hint::black_box(method.equivalent(&ctx).expect("ok")))
        });
    }
    group.finish();
}

fn bench_sgdp_sampling(c: &mut Criterion) {
    let base = make_context();
    let mut group = c.benchmark_group("sgdp_sampling");
    for p in [9usize, 17, 35, 70, 140] {
        let ctx = base.clone().with_samples(p).expect("valid P");
        group.bench_with_input(BenchmarkId::from_parameter(p), &ctx, |b, ctx| {
            b.iter(|| std::hint::black_box(MethodKind::Sgdp.equivalent(ctx).expect("ok")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods, bench_sgdp_sampling);
criterion_main!(benches);
