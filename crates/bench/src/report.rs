//! Plain-text table and CSV rendering for the experiment binaries.

use std::fmt::Write as _;

/// Renders a fixed-width text table with a header row.
///
/// All rows must have `headers.len()` cells; extra/missing cells panic in
/// debug (harness-internal misuse).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        debug_assert_eq!(row.len(), cols);
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            let _ = write!(out, "+{}", "-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(out, "| {h:<w$} ");
    }
    out.push_str("|\n");
    sep(&mut out);
    for row in rows {
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(out, "| {cell:<w$} ");
        }
        out.push_str("|\n");
    }
    sep(&mut out);
    out
}

/// Writes rows as a CSV string (no quoting needed for our numeric output;
/// cells containing commas are rejected by debug assertion).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        debug_assert!(
            row.iter().all(|c| !c.contains(',')),
            "csv cells must not contain commas"
        );
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Formats seconds as picoseconds with one decimal.
pub fn ps(seconds: f64) -> String {
    format!("{:.1}", seconds * 1e12)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            &["Method", "Max", "Avg"],
            &[
                vec!["P1".into(), "81.3".into(), "29.3".into()],
                vec!["SGDP".into(), "38.3".into(), "9.2".into()],
            ],
        );
        assert!(t.contains("| Method |"));
        assert!(t.contains("| SGDP   |"));
        let first = t.lines().next().unwrap().len();
        assert!(t.lines().all(|l| l.len() == first), "all lines same width");
    }

    #[test]
    fn csv_round_trip_shape() {
        let c = render_csv(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "a,b\n1,2\n");
    }

    #[test]
    fn ps_formats() {
        assert_eq!(ps(81.3e-12), "81.3");
        assert_eq!(ps(0.0), "0.0");
    }
}
