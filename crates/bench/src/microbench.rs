//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds fully offline, so the benches under `benches/` use
//! this harness (`harness = false`) instead of an external framework. Each
//! benchmark is auto-calibrated to a target measurement time and reported as
//! the median over a fixed number of batches, which is robust to scheduler
//! noise on shared CI machines.

use nsta_numeric::{LuFactors, SparseLu, TripletMatrix};
use std::time::{Duration, Instant};

/// Number of timed batches per benchmark; the median batch is reported.
const BATCHES: usize = 15;
/// Target wall-clock time for one batch.
const TARGET_BATCH: Duration = Duration::from_millis(40);

/// Times `f` and prints `name: <median> per iter (<iters> iters/batch)`.
///
/// The return value of `f` is passed through [`std::hint::black_box`], so
/// benchmarked code cannot be optimized away.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Calibrate: find an iteration count filling roughly one target batch.
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= TARGET_BATCH / 2 || iters >= 1 << 24 {
            let per_iter = elapsed.as_secs_f64() / iters as f64;
            iters = ((TARGET_BATCH.as_secs_f64() / per_iter.max(1e-12)) as u64).max(1);
            break;
        }
        iters *= 4;
    }

    let mut samples: Vec<f64> = (0..BATCHES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed().as_secs_f64() / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    println!(
        "{name:<40} {:>12}  ({iters} iters/batch)",
        format_time(median)
    );
}

/// Dense-vs-sparse backend comparison: factor + one trapezoidal-style step
/// (mat-vec + solve) on star-coupled-RC-shaped stamps at n ∈ {8, 32, 128}.
///
/// Run via `cargo bench -p nsta-bench --bench substrate`; the asymptotic
/// gap (O(n³)/O(n²) dense vs ~O(nnz) sparse) is what lets `spefbus
/// --segments N` grow victim meshes without the transient kernel
/// dominating the windowed phase.
pub fn bench_solver_backends() {
    for n in [8usize, 32, 128] {
        // Three parallel chains with coupling rungs onto the first — the
        // victim/aggressor mesh shape the SI flow factors, stamped in the
        // same interleaving-hostile natural order the circuit builder
        // produces (so the sparse side also pays for its fill-reducing
        // reordering, as in production).
        let chain = n / 3;
        let mut trip = TripletMatrix::new(n, n);
        for i in 0..n {
            trip.add(i, i, 4.0);
        }
        for line in 0..3 {
            for k in 1..chain {
                let (a, b) = (line * chain + k - 1, line * chain + k);
                trip.add(a, b, -1.0);
                trip.add(b, a, -1.0);
            }
        }
        for k in 0..chain {
            for line in 1..3usize {
                let (a, b) = (k, line * chain + k);
                trip.add(a, b, -0.5);
                trip.add(b, a, -0.5);
            }
        }
        let csr = trip.to_csr();
        let dense = csr.to_dense();
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        bench(&format!("solver/dense_factor_step_{n}"), || {
            let lu = LuFactors::factor(&dense).expect("dense factor");
            let mut y = dense.mul_vec(&x).expect("dense mat-vec");
            lu.solve_in_place(&mut y).expect("dense solve");
            y
        });
        bench(&format!("solver/sparse_factor_step_{n}"), || {
            let lu = SparseLu::factor(&csr).expect("sparse factor");
            let mut y = vec![0.0; n];
            csr.mul_vec_into(&x, &mut y).expect("sparse mat-vec");
            lu.solve_in_place(&mut y).expect("sparse solve");
            y
        });
        // The production shape: symbolic analysis amortized away (topo
        // cache hits, Newton iterations), numeric refactor + step only.
        let mut lu = SparseLu::factor(&csr).expect("sparse factor");
        bench(&format!("solver/sparse_refactor_step_{n}"), || {
            lu.refactor(&csr).expect("sparse refactor");
            let mut y = vec![0.0; n];
            csr.mul_vec_into(&x, &mut y).expect("sparse mat-vec");
            lu.solve_in_place(&mut y).expect("sparse solve");
            y
        });
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_covers_scales() {
        assert_eq!(format_time(2.5), "2.500 s");
        assert_eq!(format_time(2.5e-3), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 µs");
        assert_eq!(format_time(2.5e-9), "2.5 ns");
    }
}
