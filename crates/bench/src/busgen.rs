//! Generators for the `spefbus` coupled-bus workload.
//!
//! One module, two artifacts: the gate-level netlist and the matching SPEF
//! extraction for `--groups` independent victim/aggressor groups. They live
//! in the library (rather than inside the `spefbus` binary) so integration
//! tests — notably the pre-flight lint's "the bench design is clean at deny
//! level" gate — exercise the exact design CI benches, not a lookalike.

use nsta_parasitics::ast::{CapElem, DNet, ResElem, SpefFile, SpefNode, Units};
use std::fmt::Write as _;

/// Gate-level netlist of `groups` independent victim/aggressor groups.
///
/// Group `i`'s far aggressor sits behind a chain of `2i + 1` inverters, so
/// early groups keep both aggressors inside the victim's switching window
/// while later groups get their far aggressor pruned.
pub fn netlist(groups: usize) -> String {
    let mut src = String::from("module bus (");
    let mut ports = Vec::new();
    for g in 0..groups {
        ports.extend([format!("a{g}"), format!("b{g}"), format!("c{g}")]);
        ports.extend([format!("y{g}"), format!("z{g}"), format!("w{g}")]);
    }
    src.push_str(&ports.join(", "));
    src.push_str(");\n");
    for g in 0..groups {
        let _ = writeln!(src, "input a{g}, b{g}, c{g}; output y{g}, z{g}, w{g};");
    }
    for g in 0..groups {
        let stages = 2 * g + 1;
        let _ = writeln!(src, "wire v{g}, gn{g}, gf{g};");
        let _ = writeln!(src, "INVX1 u{g}_1 (.A(a{g}), .Y(v{g}));");
        let _ = writeln!(src, "INVX4 u{g}_2 (.A(v{g}), .Y(y{g}));");
        let _ = writeln!(src, "INVX1 u{g}_3 (.A(b{g}), .Y(gn{g}));");
        let _ = writeln!(src, "INVX4 u{g}_4 (.A(gn{g}), .Y(z{g}));");
        let mut prev = format!("c{g}");
        for s in 1..stages {
            let _ = writeln!(src, "wire f{g}_{s};");
            let _ = writeln!(src, "INVX1 c{g}_{s} (.A({prev}), .Y(f{g}_{s}));");
            prev = format!("f{g}_{s}");
        }
        let _ = writeln!(src, "INVX1 c{g}_{stages} (.A({prev}), .Y(gf{g}));");
        let _ = writeln!(src, "INVX4 u{g}_5 (.A(gf{g}), .Y(w{g}));");
    }
    src.push_str("endmodule\n");
    src
}

/// The uniform RC chain every extracted wire in the workload carries:
/// ground caps on nodes `name:1..=segments` and a resistor ladder from the
/// base node through them, in id order. Victims append their coupling caps
/// after these, so the ground-cap partial sums (and hence the reduced
/// `RcLineSpec`) are bit-identical between a victim and an aggressor wire.
fn rc_chain(
    name: &str,
    seg_names: &[String],
    seg_r: f64,
    seg_c: f64,
) -> (Vec<CapElem>, Vec<ResElem>) {
    let mut caps = Vec::new();
    for (k, seg) in seg_names.iter().enumerate() {
        caps.push(CapElem {
            id: (k + 1) as u64,
            a: SpefNode::sub(name, seg),
            b: None,
            value: seg_c,
        });
    }
    let mut ress = Vec::new();
    let mut prev = SpefNode::net(name);
    for (k, seg) in seg_names.iter().enumerate() {
        let next = SpefNode::sub(name, seg);
        ress.push(ResElem {
            id: (k + 1) as u64,
            a: prev,
            b: next.clone(),
            value: seg_r,
        });
        prev = next;
    }
    (caps, ress)
}

/// A Figure-1-style extraction of every wire in the coupled groups, built
/// through the parasitics AST and round-tripped through the canonical
/// writer (so the workload also exercises write → parse at scale).
///
/// `segments` sets the extraction granularity: each wire is cut into that
/// many RC segments with the wire *totals* held fixed (25.5 Ω, 28.8 fF —
/// the historical 3 × 8.5 Ω / 9.6 fF), so growing `--segments` grows the
/// per-victim mesh without changing the electrical wire. The two coupling
/// caps sit a third and two thirds of the way down the victim's line
/// (segments 1 and 2 in the historical 3-segment extraction).
///
/// Both aggressor wires of each group carry their own D_NET with the same
/// chain, so the binder uses the aggressor's extraction instead of falling
/// back to the victim's. The values are identical by construction, which
/// keeps the timing results bit-identical to the historical
/// victim-fallback extraction while making the file lint-clean
/// (`spef.missing-annotation` has nothing to flag).
pub fn spef(groups: usize, segments: usize) -> SpefFile {
    let seg_r = 25.5 / segments as f64;
    let seg_c = if segments == 3 {
        9.6e-15 // bit-exact historical value at the default granularity
    } else {
        28.8e-15 / segments as f64
    };
    let near_tap = (segments).div_ceil(3).to_string();
    let far_tap = (2 * segments).div_ceil(3).to_string();
    let seg_names: Vec<String> = (1..=segments).map(|k| k.to_string()).collect();
    let mut nets = Vec::new();
    for g in 0..groups {
        let victim = format!("v{g}");
        let near = format!("gn{g}");
        let far = format!("gf{g}");
        let (mut caps, ress) = rc_chain(&victim, &seg_names, seg_r, seg_c);
        caps.push(CapElem {
            id: (segments + 1) as u64,
            a: SpefNode::sub(&victim, &near_tap),
            b: Some(SpefNode::sub(&near, "1")),
            value: 50e-15,
        });
        caps.push(CapElem {
            id: (segments + 2) as u64,
            a: SpefNode::sub(&victim, &far_tap),
            b: Some(SpefNode::sub(&far, "1")),
            value: 50e-15,
        });
        nets.push(DNet {
            name: victim,
            total_cap: segments as f64 * seg_c + 100e-15,
            conns: Vec::new(),
            caps,
            ress,
        });
        for aggressor in [near, far] {
            let (caps, ress) = rc_chain(&aggressor, &seg_names, seg_r, seg_c);
            nets.push(DNet {
                name: aggressor,
                // The SPEF header total conventionally includes the
                // coupling this wire participates in (one 50 fF cap).
                total_cap: segments as f64 * seg_c + 50e-15,
                conns: Vec::new(),
                caps,
                ress,
            });
        }
    }
    SpefFile {
        design: "bus".into(),
        divider: '/',
        delimiter: ':',
        units: Units::default(),
        ports: Vec::new(),
        nets,
    }
}
