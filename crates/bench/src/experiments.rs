//! Accuracy-experiment driver: the machinery behind Table 1.

use crate::workload::SkewCase;
use nsta_numeric::stats::Summary;
use nsta_spice::fig1::{self, Fig1Config};
use nsta_waveform::Thresholds;
use sgdp::eval::evaluate_case;
use sgdp::gate::SpiceReceiverGate;
use sgdp::{MethodKind, PropagationContext, SgdpError};

/// Accuracy aggregate for one technique over a workload.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// The technique.
    pub method: MethodKind,
    /// Maximum absolute arrival error (s).
    pub max_error: f64,
    /// Average absolute arrival error (s).
    pub avg_error: f64,
    /// Root-mean-square error (s) — not in the paper's table, useful for
    /// distribution checks.
    pub rms_error: f64,
    /// Number of cases on which the technique failed (e.g. WLS5 on
    /// non-overlapping transitions).
    pub failures: usize,
}

/// The full accuracy table for one configuration.
#[derive(Debug, Clone)]
pub struct AccuracyTable {
    /// Per-technique aggregates, in the paper's method order.
    pub rows: Vec<AccuracyRow>,
    /// Number of noise-injection cases contributing to the statistics.
    pub cases: usize,
    /// Cases excluded because the glitch *propagated*: the golden receiver
    /// output re-switched (more than one mid-rail crossing). Those are
    /// functional-noise violations — a noise checker's job, not a gate
    /// delay model's — mirroring the delay-noise/functional-noise split of
    /// production SI flows.
    pub excluded_functional: usize,
    /// Golden (noisy) gate delay range across the workload (s).
    pub golden_delay_min: f64,
    /// See `golden_delay_min`.
    pub golden_delay_max: f64,
}

impl AccuracyTable {
    /// The row of a particular technique.
    pub fn row(&self, method: MethodKind) -> Option<&AccuracyRow> {
        self.rows.iter().find(|r| r.method == method)
    }
}

/// Runs the accuracy experiment: for every noise-injection case, simulate
/// the golden noisy waveforms, reduce them with every technique, push each
/// `Γeff` back through the (simulated) receiver and record the arrival
/// error against the golden output.
///
/// `on_case` is invoked after each case with `(index, total)` — hook for
/// progress reporting in the binaries.
///
/// # Errors
///
/// Fails on simulator errors for the golden runs; per-technique failures
/// are tallied in [`AccuracyRow::failures`] instead of aborting.
pub fn run_accuracy(
    cfg: &Fig1Config,
    cases: &[SkewCase],
    methods: &[MethodKind],
    mut on_case: impl FnMut(usize, usize),
) -> Result<AccuracyTable, SgdpError> {
    let th = Thresholds::cmos(cfg.proc.vdd);
    let gate = SpiceReceiverGate::new(*cfg);

    // The noiseless reference is skew-independent: compute once.
    let quiet = fig1::run_noiseless(cfg)?;

    let mut summaries: Vec<(MethodKind, Summary, usize)> = methods
        .iter()
        .map(|&m| (m, Summary::new(), 0usize))
        .collect();
    let mut golden_delays = Summary::new();
    let mut excluded_functional = 0usize;

    for (i, case) in cases.iter().enumerate() {
        let noisy = fig1::run_case(cfg, &case.skews)?;
        // Delay-noise vs functional-noise split: if the glitch propagated
        // and the golden output re-switched, no single equivalent ramp can
        // (or should) model it — a noise checker flags it instead.
        if noisy.out_u.crossings(th.mid()).len() > 1 {
            excluded_functional += 1;
            on_case(i + 1, cases.len());
            continue;
        }
        let ctx = PropagationContext::new(
            quiet.in_u.clone(),
            noisy.in_u.clone(),
            Some(quiet.out_u.clone()),
            th,
        )?;
        let report = evaluate_case(&ctx, &gate, &noisy.out_u, methods)?;
        golden_delays.push(report.golden_delay.value());
        for ((_, summary, failures), (_, outcome)) in summaries.iter_mut().zip(&report.outcomes) {
            match outcome {
                Ok(out) => summary.push(out.arrival_error),
                Err(_) => *failures += 1,
            }
        }
        on_case(i + 1, cases.len());
    }

    let rows = summaries
        .into_iter()
        .map(|(method, s, failures)| AccuracyRow {
            method,
            max_error: if s.count() > 0 { s.max() } else { f64::NAN },
            avg_error: s.mean(),
            rms_error: s.rms(),
            failures,
        })
        .collect();
    Ok(AccuracyTable {
        rows,
        cases: cases.len() - excluded_functional,
        excluded_functional,
        golden_delay_min: golden_delays.min(),
        golden_delay_max: golden_delays.max(),
    })
}
