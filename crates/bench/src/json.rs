//! Minimal JSON rendering for machine-readable benchmark reports.
//!
//! The workspace builds fully offline, so instead of a serde dependency the
//! bench binaries assemble a [`Json`] tree and render it. Output is stable
//! (object keys keep insertion order), which makes the emitted reports
//! diff-friendly across PRs — the point of tracking them as CI artifacts.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number; non-finite values render as `null` (JSON has no
    /// NaN/inf).
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for objects.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders the value as compact JSON text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).render_into(out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<bool> for Json {
    fn from(x: bool) -> Json {
        Json::Bool(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj([
            ("name", Json::str("spefbus")),
            ("groups", Json::from(64usize)),
            ("ok", Json::from(true)),
            ("times", Json::Arr(vec![Json::Num(1.5), Json::Null])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"spefbus","groups":64,"ok":true,"times":[1.5,null]}"#
        );
    }

    #[test]
    fn escapes_strings_and_hides_nonfinite() {
        assert_eq!(Json::str("a\"b\\c\nd").render(), r#""a\"b\\c\nd""#);
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
    }
}
