//! Experiment harness for the DATE'05 noisy-waveform reproduction.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md`'s experiment index); this library holds the shared
//! machinery: noise-injection workloads, per-case evaluation, accuracy
//! aggregation and plain-text/CSV reporting.

#![forbid(unsafe_code)]

pub mod busgen;
pub mod experiments;
pub mod json;
pub mod microbench;
pub mod report;
pub mod workload;

pub use experiments::{run_accuracy, AccuracyRow, AccuracyTable};
pub use workload::{random_pairs, skew_sweep, SkewCase};
