//! Ablation **E-A1**: accuracy vs sampling budget `P`.
//!
//! The paper: "The SGDP run-time can be reduced by using smaller P values.
//! However small P tends to result in lower timing analysis accuracy."
//! This sweep quantifies that trade-off on Configuration I.
//!
//! Usage: `psweep [--cases N]`

use nsta_bench::report::{ps, render_table};
use nsta_bench::skew_sweep;
use nsta_spice::fig1::Fig1Config;
use sgdp::MethodKind;

fn main() {
    let mut cases = 21usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--cases" {
            cases = args.next().and_then(|v| v.parse().ok()).unwrap_or(21);
        }
    }
    let workload = skew_sweep(1, cases, 0.5e-9);
    let mut rows = Vec::new();
    for p in [5usize, 9, 17, 35, 70] {
        let cfg = Fig1Config::config_i();
        // The context's sampling budget is configured through the
        // experiment driver; rebuild it with the requested P.
        let table = run_accuracy_with_p(&cfg, &workload, p);
        rows.push(vec![p.to_string(), ps(table.0), ps(table.1)]);
        eprintln!("P = {p} done");
    }
    println!("\nE-A1 — SGDP accuracy vs sampling budget P (Config I, {cases} cases)");
    print!("{}", render_table(&["P", "Max (ps)", "Avg (ps)"], &rows));
}

/// Runs the accuracy experiment with an explicit P, returning SGDP's
/// (max, avg) error.
fn run_accuracy_with_p(
    cfg: &Fig1Config,
    workload: &[nsta_bench::SkewCase],
    p: usize,
) -> (f64, f64) {
    // `run_accuracy` uses the default P; for the sweep we go through the
    // lower-level evaluation with an adjusted context.
    use nsta_numeric::stats::Summary;
    use nsta_spice::fig1;
    use nsta_waveform::Thresholds;
    use sgdp::eval::evaluate_case;
    use sgdp::gate::SpiceReceiverGate;
    use sgdp::PropagationContext;

    let th = Thresholds::cmos(cfg.proc.vdd);
    let gate = SpiceReceiverGate::new(*cfg);
    let quiet = fig1::run_noiseless(cfg).expect("noiseless");
    let mut s = Summary::new();
    for case in workload {
        let noisy = fig1::run_case(cfg, &case.skews).expect("case");
        if noisy.out_u.crossings(th.mid()).len() > 1 {
            continue; // functional-noise case, as in table1
        }
        let ctx = PropagationContext::new(
            quiet.in_u.clone(),
            noisy.in_u.clone(),
            Some(quiet.out_u.clone()),
            th,
        )
        .expect("context")
        .with_samples(p)
        .expect("valid P");
        let report =
            evaluate_case(&ctx, &gate, &noisy.out_u, &[MethodKind::Sgdp]).expect("evaluation");
        if let Some(err) = report.error_of(MethodKind::Sgdp) {
            s.push(err);
        }
    }
    (s.max(), s.mean())
}
