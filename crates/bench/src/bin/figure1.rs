//! Regenerates **Figure 1** (the experimental setup) as a netlist audit:
//! the constructed topology, its element values and counts, for both
//! configurations. Unit tests in `nsta-spice` assert the figure's element
//! values (R = 8.5 Ω, C = 4.8 fF per segment, ΣCm = 100 fF); this binary
//! prints the same facts for human inspection.

use nsta_bench::report::render_table;
use nsta_spice::fig1::{build, Fig1Config};

fn describe(name: &str, cfg: &Fig1Config) {
    let skews = vec![Some(0.0); cfg.aggressors];
    let (net, nodes) = build(cfg, &skews).expect("testbench builds");
    let (r, c, v, i, m) = net.element_counts();
    let spec = cfg.line_spec().expect("line spec");
    println!("\nFigure 1 — Configuration {name}");
    let rows = vec![
        vec!["aggressors".into(), cfg.aggressors.to_string()],
        vec!["line length (um)".into(), format!("{}", cfg.line_length_um)],
        vec!["segments / line".into(), spec.segments.to_string()],
        vec![
            "R per segment (ohm)".into(),
            format!("{:.2}", spec.r_segment()),
        ],
        vec![
            "C per segment (fF)".into(),
            format!(
                "{:.2} (2 x {:.2})",
                spec.c_segment() * 1e15,
                spec.c_segment() * 1e15 / 2.0
            ),
        ],
        vec![
            "total Cm per pair (fF)".into(),
            format!("{:.1}", cfg.cm_total * 1e15),
        ],
        vec![
            "input slew 10-90 (ps)".into(),
            format!("{:.0}", cfg.input_slew * 1e12),
        ],
        vec!["vdd (V)".into(), format!("{}", cfg.proc.vdd)],
        vec!["nodes".into(), net.node_count().to_string()],
        vec!["resistors".into(), r.to_string()],
        vec!["capacitors".into(), c.to_string()],
        vec!["voltage sources".into(), v.to_string()],
        vec!["current sources".into(), i.to_string()],
        vec!["mosfets".into(), m.to_string()],
        vec![
            "victim receiver".into(),
            format!(
                "in_u = {}, out_u = {}",
                net.node_name(nodes.in_u).expect("named"),
                net.node_name(nodes.out_u).expect("named")
            ),
        ],
    ];
    print!("{}", render_table(&["Property", "Value"], &rows));
}

fn main() {
    describe("I", &Fig1Config::config_i());
    describe("II", &Fig1Config::config_ii());
}
