//! Regenerates **Section 4.2** (run-time comparison): wall time per gate
//! delay propagation for every technique, plus the linear-in-P scaling the
//! paper claims.
//!
//! The paper reports ≈40 µs for P1/P2/LSF3/E4 and ≈60–65 µs for WLS5/SGDP
//! (P = 35) on a Sun Blade 1000; absolute numbers differ on modern CPUs but
//! the *ordering* (sensitivity-based methods ≈ 1.5× the point methods) and
//! P-linearity are the reproducible claims.
//!
//! Usage: `runtime [--iterations N]`

use nsta_bench::report::render_table;
use nsta_spice::fig1::{self, Fig1Config};
use nsta_waveform::Thresholds;
use sgdp::{MethodKind, PropagationContext};
use std::time::Instant;

fn main() {
    let mut iterations = 2000usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--iterations" => {
                iterations = args.next().and_then(|v| v.parse().ok()).unwrap_or(2000);
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    // One representative Config-I case, waveforms precomputed: the timed
    // region is exactly the delay-propagation step the paper times.
    let cfg = Fig1Config::config_i();
    let th = Thresholds::cmos(cfg.proc.vdd);
    eprintln!("preparing waveforms (one golden simulation)...");
    let quiet = fig1::run_noiseless(&cfg).expect("noiseless run");
    let noisy = fig1::run_case(&cfg, &[0.0]).expect("noisy run");
    let ctx = PropagationContext::new(
        quiet.in_u.clone(),
        noisy.in_u.clone(),
        Some(quiet.out_u.clone()),
        th,
    )
    .expect("context");

    let mut rows = Vec::new();
    for method in MethodKind::all() {
        // Warm up and validate once.
        if method.equivalent(&ctx).is_err() {
            rows.push(vec![method.name().to_string(), "failed".into(), "-".into()]);
            continue;
        }
        let start = Instant::now();
        let mut acc = 0.0f64;
        for _ in 0..iterations {
            let g = method.equivalent(&ctx).expect("validated above");
            acc += g.arrival_mid();
        }
        let micros = start.elapsed().as_secs_f64() * 1e6 / iterations as f64;
        std::hint::black_box(acc);
        rows.push(vec![
            method.name().to_string(),
            format!("{micros:.2}"),
            format!(
                "{:.2}",
                micros
                    / rows
                        .first()
                        .map_or(micros, |r: &Vec<String>| r[1].parse().unwrap_or(micros))
            ),
        ]);
    }
    println!("\nSection 4.2 — run-time per gate delay propagation ({iterations} iterations)");
    print!(
        "{}",
        render_table(&["Method", "us/propagation", "vs P1"], &rows)
    );

    // P-linearity: SGDP runtime vs sampling budget.
    let mut prows = Vec::new();
    for p in [9usize, 17, 35, 70, 140] {
        let ctx_p = ctx.clone().with_samples(p).expect("valid P");
        let start = Instant::now();
        for _ in 0..iterations {
            std::hint::black_box(MethodKind::Sgdp.equivalent(&ctx_p).expect("sgdp"));
        }
        let micros = start.elapsed().as_secs_f64() * 1e6 / iterations as f64;
        prows.push(vec![p.to_string(), format!("{micros:.2}")]);
    }
    println!("\nSGDP runtime vs sampling budget P (paper: linear order in P)");
    print!("{}", render_table(&["P", "us/propagation"], &prows));
}
