//! Ablation **E-A3**: gates with non-overlapping input/output transitions.
//!
//! The paper: "WLS5 cannot be applied to gates with large intrinsic delay
//! such as multi-stage gates, and/or those with large fanout loadings,
//! where the input and output transitions may not overlap." SGDP's
//! pre/post time-shift step recovers these cases.
//!
//! The receiver here is a four-stage buffer chain (two cascaded buffers of
//! weak devices) with a heavy capacitive load — a multi-stage cell whose
//! output transition trails the input by far more than one slew, so the
//! noiseless input and output transitions genuinely do not overlap.
//!
//! Usage: `nonoverlap [--cases N]`

use nsta_bench::report::{ps, render_table};
use nsta_numeric::stats::Summary;
use nsta_spice::fig1::{self, Fig1Config};
use nsta_spice::{cells, Netlist, SimOptions};
use nsta_waveform::{Thresholds, Waveform};
use sgdp::delay::gate_delay;
use sgdp::{MethodKind, PropagationContext, SgdpError};

/// Simulates the multi-stage receiver (two cascaded buffers — four
/// inverter stages — plus heavy fanout) for an arbitrary input waveform.
fn buffer_response(cfg: &Fig1Config, input: &Waveform) -> Waveform {
    let proc = cfg.proc;
    let mut net = Netlist::new(proc.vdd);
    let inp = net.node("in");
    let mid = net.node("mid");
    let out = net.node("out");
    net.vsource(inp, input.clone()).expect("source");
    cells::add_buffer(&mut net, &proc, 0.4, 0.4, inp, mid, "buf1").expect("buffer 1");
    cells::add_buffer(&mut net, &proc, 0.4, 1.0, mid, out, "buf2").expect("buffer 2");
    // Heavy fanout loading pushes the output transition far from the input.
    cells::add_load_cap(&mut net, out, 150.0 * proc.inverter_input_cap(1.0)).expect("load");
    let t_stop = (cfg.t_stop + 2e-9).max(input.t_end() + 2e-9);
    let res = net
        .run_transient(SimOptions::new(0.0, t_stop, cfg.dt).expect("opts"))
        .expect("sim");
    res.voltage(out).expect("trace")
}

fn main() {
    let mut cases = 9usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--cases" {
            cases = args.next().and_then(|v| v.parse().ok()).unwrap_or(9);
        }
    }
    let cfg = Fig1Config::config_i();
    let th = Thresholds::cmos(cfg.proc.vdd);
    eprintln!("simulating noiseless reference...");
    let quiet = fig1::run_noiseless(&cfg).expect("noiseless");
    let quiet_out = buffer_response(&cfg, &quiet.in_u);

    // Confirm the premise: input and output transitions do not overlap.
    let t_in = quiet.in_u.last_crossing(th.mid()).expect("in crossing");
    let t_out = quiet_out.last_crossing(th.mid()).expect("out crossing");
    println!(
        "buffer receiver intrinsic delay: {:.1} ps (input slew {:.1} ps) — transitions {}",
        (t_out - t_in) * 1e12,
        quiet
            .in_u
            .slew_first_to_first(th, nsta_waveform::Polarity::Rise)
            .expect("slew")
            * 1e12,
        if t_out - t_in
            > quiet
                .in_u
                .slew_first_to_first(th, nsta_waveform::Polarity::Rise)
                .expect("slew")
        {
            "do NOT overlap"
        } else {
            "overlap"
        }
    );

    let methods = [MethodKind::Wls5, MethodKind::Sgdp];
    let mut stats: Vec<(MethodKind, Summary, usize)> = methods
        .iter()
        .map(|&m| (m, Summary::new(), 0usize))
        .collect();

    for k in 0..cases {
        let skew = -0.25e-9 + 0.5e-9 * k as f64 / (cases - 1) as f64;
        let noisy = fig1::run_case(&cfg, &[skew]).expect("case");
        let golden_out = buffer_response(&cfg, &noisy.in_u);
        let golden = gate_delay(&noisy.in_u, &golden_out, th).expect("golden delay");
        let ctx = PropagationContext::new(
            quiet.in_u.clone(),
            noisy.in_u.clone(),
            Some(quiet_out.clone()),
            th,
        )
        .expect("context");
        for (method, summary, failures) in stats.iter_mut() {
            match method.equivalent(&ctx) {
                Ok(gamma) => {
                    let wave = gamma
                        .to_waveform(0.0, cfg.t_stop.max(gamma.t_rail_arrival() + 0.2e-9), 1e-12)
                        .expect("gamma wave");
                    let pred_out = buffer_response(&cfg, &wave);
                    let t_pred = pred_out.last_crossing(th.mid()).expect("pred crossing");
                    summary.push((t_pred - golden.t_out_mid).abs());
                }
                Err(SgdpError::NonOverlapping { .. }) => *failures += 1,
                Err(other) => {
                    eprintln!("{method} failed unexpectedly: {other}");
                    *failures += 1;
                }
            }
        }
        eprintln!("case {}/{} done", k + 1, cases);
    }

    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|(m, s, failures)| {
            vec![
                m.name().to_string(),
                if s.count() > 0 {
                    ps(s.max())
                } else {
                    "-".into()
                },
                if s.count() > 0 {
                    ps(s.mean())
                } else {
                    "-".into()
                },
                format!("{failures}/{cases}"),
            ]
        })
        .collect();
    println!("\nE-A3 — non-overlapping transitions (multi-stage buffer, heavy fanout)");
    print!(
        "{}",
        render_table(&["Method", "Max (ps)", "Avg (ps)", "Refused"], &rows)
    );
}
