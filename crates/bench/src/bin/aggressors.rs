//! Ablation **E-A2**: WLS5's blindness to noise outside the noiseless
//! critical region, and its degradation with aggressor count.
//!
//! The paper: "If the noise distortion occurs outside the noiseless
//! critical region, then it will be ignored [by WLS5]... the higher the
//! number of aggressors is, the higher is the probability that WLS5
//! underestimates the arrival time and/or slew at the output of the gate
//! by a large amount."
//!
//! This experiment restricts the alignment sweep to *late* skews — noise
//! arriving at and beyond the tail of the noiseless critical region — and
//! compares WLS5 and SGDP for one and two aggressors.
//!
//! Usage: `aggressors [--cases N]`

use nsta_bench::report::{ps, render_table};
use nsta_bench::{run_accuracy, SkewCase};
use nsta_spice::fig1::Fig1Config;
use sgdp::MethodKind;

fn late_sweep(aggressors: usize, cases: usize) -> Vec<SkewCase> {
    // Skews placing the aggressor edge near and after the victim's
    // noiseless critical region tail.
    (0..cases)
        .map(|k| {
            let s = 0.1e-9 + 0.4e-9 * k as f64 / (cases - 1) as f64;
            SkewCase {
                skews: vec![s; aggressors],
            }
        })
        .collect()
}

fn main() {
    let mut cases = 15usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--cases" {
            cases = args.next().and_then(|v| v.parse().ok()).unwrap_or(15);
        }
    }
    let methods = [MethodKind::Wls5, MethodKind::Sgdp];
    let mut rows = Vec::new();
    for (label, cfg) in [
        ("1 (Config I)", Fig1Config::config_i()),
        ("2 (Config II)", Fig1Config::config_ii()),
    ] {
        let workload = late_sweep(cfg.aggressors, cases);
        let table = run_accuracy(&cfg, &workload, &methods, |_, _| {}).expect("experiment");
        for row in &table.rows {
            rows.push(vec![
                label.to_string(),
                row.method.name().to_string(),
                ps(row.max_error),
                ps(row.avg_error),
                row.failures.to_string(),
            ]);
        }
        eprintln!("{label} done ({} delay-noise cases)", table.cases);
    }
    println!("\nE-A2 — late-noise robustness: WLS5 vs SGDP ({cases} late-aligned cases each)");
    print!(
        "{}",
        render_table(
            &["Aggressors", "Method", "Max (ps)", "Avg (ps)", "Failures"],
            &rows
        )
    );
}
