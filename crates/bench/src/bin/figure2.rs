//! Regenerates **Figure 2** of the paper as CSV series:
//!
//! * `figure2a.csv` — the noiseless input/output waveforms and the scaled
//!   sensitivity `0.2·ρ_noiseless` (panel a),
//! * `figure2b.csv` — the noisy input, the golden (simulated) noisy output,
//!   the transferred sensitivity `0.2·ρeff`, the equivalent ramp `Γeff`
//!   and the predicted output `v_out_eff` (panel b).
//!
//! Usage: `figure2 [--skew ps] [--out dir]`

use nsta_spice::fig1::{self, Fig1Config};
use nsta_waveform::Thresholds;
use sgdp::sensitivity::{effective_sensitivity, noiseless_sensitivity};
use sgdp::{MethodKind, PropagationContext};
use std::io::Write as _;
use std::path::PathBuf;

fn main() {
    let mut skew = 0.0f64;
    let mut out_dir = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--skew" => {
                let ps: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(0.0);
                skew = ps * 1e-12;
            }
            "--out" => {
                out_dir = args
                    .next()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("."));
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let cfg = Fig1Config::config_i();
    let th = Thresholds::cmos(cfg.proc.vdd);
    eprintln!("simulating Configuration I, skew {:+.0} ps...", skew * 1e12);
    let quiet = fig1::run_noiseless(&cfg).expect("noiseless run");
    let noisy = fig1::run_case(&cfg, &[skew]).expect("noisy run");
    let ctx = PropagationContext::new(
        quiet.in_u.clone(),
        noisy.in_u.clone(),
        Some(quiet.out_u.clone()),
        th,
    )
    .expect("context");

    let sens = noiseless_sensitivity(&ctx).expect("rho extraction");
    let eff = effective_sensitivity(&sens.curve, &ctx).expect("rho transfer");
    let gamma = MethodKind::Sgdp.equivalent(&ctx).expect("sgdp");
    let gamma_wave = gamma
        .to_waveform(0.0, cfg.t_stop, 1e-12)
        .expect("gamma waveform");
    let v_out_eff = fig1::run_receiver(&cfg, &gamma_wave).expect("receiver replay");

    // Panel (a).
    let path_a = out_dir.join("figure2a.csv");
    let mut fa = std::fs::File::create(&path_a).expect("create figure2a.csv");
    writeln!(fa, "t_ps,v_in_noiseless,v_out_noiseless,rho_scaled").expect("write");
    let (r0, r1) = sens.curve.region();
    let t_start = r0 - 0.3e-9;
    let t_end = r1 + 0.5e-9;
    let n = 1200;
    for k in 0..=n {
        let t = t_start + (t_end - t_start) * k as f64 / n as f64;
        writeln!(
            fa,
            "{:.2},{:.5},{:.5},{:.5}",
            t * 1e12,
            quiet.in_u.value_at(t),
            quiet.out_u.value_at(t),
            0.2 * sens.curve.rho_at_time(t)
        )
        .expect("write");
    }
    eprintln!("wrote {}", path_a.display());

    // Panel (b).
    let path_b = out_dir.join("figure2b.csv");
    let mut fb = std::fs::File::create(&path_b).expect("create figure2b.csv");
    writeln!(
        fb,
        "t_ps,v_in_noisy,v_out_noisy,gamma_eff,v_out_eff,rho_eff_scaled"
    )
    .expect("write");
    for k in 0..=n {
        let t = t_start + (t_end - t_start) * k as f64 / n as f64;
        // ρeff is sampled at P points; interpolate piecewise for plotting.
        let rho_eff = {
            let ts = &eff.times;
            if t < ts[0] || t > *ts.last().expect("non-empty") {
                0.0
            } else {
                nsta_numeric::interp::interp1_clamped(ts, &eff.rho, t)
            }
        };
        writeln!(
            fb,
            "{:.2},{:.5},{:.5},{:.5},{:.5},{:.5}",
            t * 1e12,
            noisy.in_u.value_at(t),
            noisy.out_u.value_at(t),
            gamma.value_at(t),
            v_out_eff.value_at(t),
            0.2 * rho_eff
        )
        .expect("write");
    }
    eprintln!("wrote {}", path_b.display());

    println!(
        "figure 2 data written: Γeff t50 = {:.1} ps, slew = {:.1} ps; golden out t50 = {:.1} ps, predicted = {:.1} ps",
        gamma.arrival_mid() * 1e12,
        gamma.slew(th) * 1e12,
        noisy.out_u.last_crossing(th.mid()).expect("crossing") * 1e12,
        v_out_eff.last_crossing(th.mid()).expect("crossing") * 1e12,
    );
}
