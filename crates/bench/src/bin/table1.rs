//! Regenerates **Table 1** of the paper: gate-delay error (max / avg, in
//! picoseconds) of P1, P2, LSF3, E4, WLS5 and SGDP against the golden
//! transistor-level simulation, for Configuration I (one aggressor,
//! 1000 µm lines) and Configuration II (two aggressors, 500 µm lines).
//!
//! Usage: `table1 [--cases N] [--config i|ii|both] [--csv]`
//! The paper uses 200 noise-injection cases over a 1 ns alignment window.

use nsta_bench::report::{ps, render_csv, render_table};
use nsta_bench::{run_accuracy, skew_sweep};
use nsta_spice::fig1::Fig1Config;
use sgdp::MethodKind;

struct Args {
    cases: usize,
    run_i: bool,
    run_ii: bool,
    csv: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        cases: 200,
        run_i: true,
        run_ii: true,
        csv: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cases" => {
                args.cases = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--cases needs an integer"));
            }
            "--config" => match it.next().as_deref() {
                Some("i") => args.run_ii = false,
                Some("ii") => args.run_i = false,
                Some("both") => {}
                _ => usage("--config takes i, ii or both"),
            },
            "--csv" => args.csv = true,
            other => usage(&format!("unknown argument {other}")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: table1 [--cases N] [--config i|ii|both] [--csv]");
    std::process::exit(2);
}

fn run_config(name: &str, cfg: &Fig1Config, cases: usize, csv: bool) {
    // The paper: cases spread over a 1 ns window (±0.5 ns around the victim).
    let workload = skew_sweep(cfg.aggressors, cases, 0.5e-9);
    let methods = MethodKind::all();
    eprintln!("[{name}] running {cases} noise-injection cases...");
    let started = std::time::Instant::now();
    let table = run_accuracy(cfg, &workload, &methods, |done, total| {
        if done % 20 == 0 || done == total {
            eprintln!(
                "[{name}] {done}/{total} cases ({:.1}s)",
                started.elapsed().as_secs_f64()
            );
        }
    })
    .unwrap_or_else(|e| {
        eprintln!("[{name}] experiment failed: {e}");
        std::process::exit(1);
    });

    let headers = ["Method", "Max (ps)", "Avg (ps)", "RMS (ps)", "Failures"];
    let rows: Vec<Vec<String>> = table
        .rows
        .iter()
        .map(|r| {
            vec![
                r.method.name().to_string(),
                ps(r.max_error),
                ps(r.avg_error),
                ps(r.rms_error),
                r.failures.to_string(),
            ]
        })
        .collect();
    println!("\nTable 1 — Configuration {name}: delay error vs golden simulation");
    println!(
        "({} delay-noise cases; {} functional-noise cases excluded; golden gate delay spans {} .. {} ps)",
        table.cases,
        table.excluded_functional,
        ps(table.golden_delay_min),
        ps(table.golden_delay_max)
    );
    if csv {
        print!("{}", render_csv(&headers, &rows));
    } else {
        print!("{}", render_table(&headers, &rows));
    }
}

fn main() {
    let args = parse_args();
    if args.run_i {
        run_config("I", &Fig1Config::config_i(), args.cases, args.csv);
    }
    if args.run_ii {
        run_config("II", &Fig1Config::config_ii(), args.cases, args.csv);
    }
}
