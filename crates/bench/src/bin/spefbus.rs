//! SPEF-driven STA workload: a synthetic coupled bus pushed through the
//! full parse → bind → window-filter → crosstalk pipeline.
//!
//! Generates `--groups` independent victim/aggressor groups. Group `i`'s
//! far aggressor sits behind a chain of `2i + 1` inverters, so early
//! groups keep both aggressors inside the victim's switching window while
//! later groups get their far aggressor pruned — exercising both branches
//! of the temporal-correlation filter at scale. The run reports binding
//! statistics, pruning counts, fixed-point iterations and wall-clock time
//! across five analysis configurations: windowed-incremental (the default
//! flow), windowed with a forced full recompute per iteration (isolates the
//! incremental fixed point's benefit), windowed on a worker pool (when
//! `--threads > 1`; results are asserted bit-identical to 1-thread),
//! windowed without the topology cache (ditto), and unfiltered.
//!
//! With `--sdc FILE` the run additionally binds an SDC constraint set
//! onto the design and repeats the windowed analysis under the resulting
//! per-pin boundary conditions, reporting how the constraint-driven
//! arrival windows change aggressor pruning (the `pruning_delta` field)
//! and the worst slack against the declared clock.
//!
//! The topology-keyed factorization cache (the near-clone far-aggressor
//! groups share LU factors) is on by default; `--no-topo-cache` disables
//! it everywhere for A/B comparisons. When enabled, the run repeats the
//! windowed analysis with the cache off and asserts the reports are
//! bit-identical, reporting hit/miss counts and the cone partition size
//! in the JSON `cache` section.
//!
//! Alongside the text report it writes a machine-readable JSON summary
//! (default `BENCH_spefbus.json`) so CI can archive the perf trajectory
//! per PR. The in-binary parity checks (threaded ≡ sequential,
//! incremental ≡ full recompute, cached ≡ uncached) gate that artifact:
//! on a parity failure the run deletes any stale JSON at the target path
//! and exits nonzero **without** writing a new one, so CI cannot upload a
//! green-looking report from a broken run.
//!
//! The transient kernel runs on the sparse structure-exploiting backend by
//! default; `--dense-solver` switches the whole run to the dense
//! partial-pivoting baseline, and the default run performs a dense A/B of
//! the windowed analysis, asserting the worst arrival matches within
//! 1e-6 ps (the `solver` JSON section records backend, mesh nnz and the
//! parity flag). `--segments N` scales every victim wire's extraction to
//! N RC segments (same totals), growing the per-victim mesh — the axis on
//! which the sparse backend's asymptotic advantage shows.
//!
//! Observability: `--trace FILE` re-runs the windowed analysis with the
//! `nsta-obs` recorder enabled and writes a Chrome trace-event JSON
//! (loadable in Perfetto / `chrome://tracing`) with per-phase, per-cone
//! and per-iteration spans; `--metrics` merges the flat counter/gauge
//! snapshot into the JSON report as a `metrics` section. Either flag also
//! arms the observability gates: the instrumented run must be
//! bit-identical to the uninstrumented one and its windowed-phase time
//! within the 5% overhead budget (with a 10 ms absolute floor so a few-ms
//! CI run is not failed on scheduler noise) — both recorded in the `obs`
//! JSON section and enforced like every other parity check.
//!
//! A capped fixed point is not silent: non-convergence prints a warning
//! with the final window delta, and `--strict-converge` turns it into
//! exit code 3. The JSON artifact and the trace are written to a temp
//! file and atomically renamed into place (and any pre-existing artifact
//! is removed up front), so a panic mid-analysis cannot leave a stale or
//! partial report from a prior run on disk.
//!
//! Fault injection: `--inject SPEC` (with `--inject-seed N`) repeats the
//! windowed analysis with deterministic faults forced into named pipeline
//! sites — `pivot-loss`, `nan-solve`, `worker-panic`, `cache-poison`,
//! comma-separated, each optionally `name:count` — under
//! `FaultPolicy::Isolate`. The run must recover every injected fault
//! through the degradation machinery (dense retry, halved timestep, cone
//! retry, lock recovery) and land within the 1e-6 ps parity tolerance of
//! the clean run; the `faults` JSON section records the injected/recovered
//! counts, per-site fire counts, degrade events and the parity delta, and
//! any shortfall is a parity failure (exit 1). The clean analyses are
//! never run with injection armed, so all non-`faults` sections stay
//! bit-identical to an uninjected run.
//!
//! Pre-flight lint: `--lint` runs the `nsta-lint` rule registry over the
//! bound design + SPEF + SDC before any solve and prints the diagnostics;
//! `--lint=deny` additionally promotes warnings, so *any* diagnostic fails
//! the run with exit code 4. Linting is strictly read-only — the timing
//! sections of a `--lint` run are bit-identical to a run without it — and
//! the report lands in the JSON artifact as a `lint` section CI validates.
//!
//! Resource governance: `--cache-budget BYTES` caps the topology cache's
//! resident footprint (LRU eviction; eviction can only cost refactors,
//! never change a bit — a custom budget arms an extra in-binary gate
//! asserting the capped run is bit-identical to an unbounded-cache run).
//! `--deadline-ms N` repeats the windowed analysis under a wall-clock
//! deadline with cooperative cancellation: on expiry the current iteration
//! finishes, remaining cones are skipped, and the partial result is marked
//! `timed_out` with per-net staleness. A generous deadline must complete
//! and be bit-identical to the production run (parity-gated); an expired
//! one is reported as degraded operation, not a failure — unless
//! `--strict-deadline` promotes it to exit code 5. The `memory` and
//! `governance` JSON sections archive peak RSS, cache bytes/evictions,
//! deadline outcome and convergence-governor interventions for CI.
//!
//! Incremental ECO sessions: `--eco N` opens a long-lived
//! `nsta_session::TimingSession` over the same design and absorbs a
//! deterministic stream of N transactional edits (output-load changes,
//! driver-resistance changes, single-net re-annotations, cycled over the
//! groups by a seeded PRNG), each incrementally re-solving only the
//! dirtied coupling clusters. The run then (a) forces one rollback by
//! applying an edit under an already-expired fake deadline and asserts
//! the session stays serviceable, (b) shadow-audits the final state
//! against a from-scratch batch analysis — a divergence quarantines the
//! session and exits 6 — and (c) with `--eco-replay` rebuilds a fresh
//! session from the journal and asserts bit-identity (a mismatch is a
//! parity failure, exit 1). The `eco` JSON section archives per-edit
//! latency, the full-reanalysis latency, their ratio (the incremental
//! speedup CI gates on), audit/rollback/replay outcomes and the
//! topology-cache entries released by edits.
//!
//! Usage: `spefbus [--groups N] [--threads N] [--segments N] [--sdc FILE]
//! [--json PATH] [--trace FILE] [--metrics] [--lint[=deny]]
//! [--strict-converge] [--no-topo-cache] [--cache-budget BYTES]
//! [--deadline-ms N] [--strict-deadline] [--dense-solver] [--inject SPEC]
//! [--inject-seed N] [--eco N] [--eco-replay]`

use nsta_bench::busgen::{netlist, spef};
use nsta_bench::json::Json;
use nsta_bench::microbench;
use nsta_constraints::{bind_sdc, parse_sdc};
use nsta_liberty::characterize::{inverter_family, Options};
use nsta_parasitics::{bind_couplings, parse_spef, write_spef, BindOptions};
use nsta_session::{Edit, EditOutcome, SessionOptions, TimingSession};
use nsta_spice::Process;
use nsta_sta::{
    verilog, BoundaryConditions, Constraints, Deadline, DegradeAction, FakeClock, FaultPolicy,
    SiOptions, SolverBackend, Sta,
};
use std::time::{Duration, Instant};

const USAGE: &str = "usage: spefbus [--groups N] [--threads N] [--segments N] \
[--sdc FILE] [--json PATH] [--trace FILE] [--metrics] [--lint[=deny]] \
[--strict-converge] [--no-topo-cache] [--cache-budget BYTES] \
[--deadline-ms N] [--strict-deadline] [--dense-solver] [--inject SPEC] \
[--inject-seed N] [--eco N] [--eco-replay] [--help]";

const HELP: &str = "SPEF-driven crosstalk STA workload with built-in parity gates.

flags:
  --groups N          victim/aggressor groups to generate (default 8)
  --threads N         worker threads for the pooled runs (default 1)
  --segments N        RC segments per victim wire (default 3)
  --sdc FILE          bind an SDC constraint set and repeat the analysis
  --json PATH         JSON report path (default BENCH_spefbus.json)
  --trace FILE        write a Chrome trace of an instrumented re-run
  --metrics           merge the counter snapshot into the JSON report
  --lint              pre-flight lint the design + SPEF + SDC before any
                      solve; deny-level diagnostics exit 4
  --lint=deny         as --lint, but promote warnings: any diagnostic
                      at all exits 4
  --strict-converge   treat fixed-point non-convergence as fatal (exit 3)
  --no-topo-cache     disable the topology-keyed factorization cache
  --cache-budget BYTES
                      cap the topology cache's resident bytes (LRU
                      eviction; default 67108864). A custom budget arms
                      an extra parity gate: the capped run must be
                      bit-identical to an unbounded-cache run
  --deadline-ms N     repeat the windowed analysis under an N ms
                      wall-clock deadline with cooperative cancellation;
                      an in-budget run must be bit-identical to the
                      production run, an expired one yields a partial
                      result marked timed_out with per-net staleness
  --strict-deadline   treat a --deadline-ms expiry as fatal (exit 5)
  --dense-solver      use the dense partial-pivot transient backend
  --inject SPEC       force deterministic faults into a recovery run:
                      comma-separated site names (pivot-loss, nan-solve,
                      worker-panic, cache-poison), each optionally name:count
  --inject-seed N     PRNG seed for fault placement (default 1)
  --eco N             open an incremental timing session and stream N
                      deterministic transactional edits through it
                      (seeded by --inject-seed); each edit re-solves
                      only the dirtied coupling clusters, a forced
                      rollback must leave the session serviceable, and
                      the final state is shadow-audited against a
                      from-scratch batch analysis (divergence exits 6)
  --eco-replay        after --eco, rebuild a fresh session from the edit
                      journal and assert bit-identity with the live
                      session (a mismatch is a parity failure, exit 1)
  --help, -h          print this help and exit

exit codes:
  0   success: all parity gates passed, artifacts written
  1   parity-gate failure (stale JSON deleted, no new JSON written)
  2   usage or input error (unknown flag, bad value, unreadable --sdc,
      malformed --inject spec)
  3   fixed point failed to converge under --strict-converge
  4   pre-flight lint failed (deny diagnostics, or any diagnostic
      under --lint=deny); no analysis was run, no JSON written
  5   --deadline-ms expired under --strict-deadline (partial result
      discarded, no JSON written)
  6   --eco shadow audit failed: the incremental session diverged from
      the batch reference; the session was quarantined read-only and no
      JSON was written";

/// Stable wire names for degrade actions in the JSON report.
fn action_name(a: DegradeAction) -> &'static str {
    match a {
        DegradeAction::DenseRetry => "dense-retry",
        DegradeAction::HalvedTimestep => "halved-timestep",
        DegradeAction::ConeRetry => "cone-retry",
        DegradeAction::LockRecovered => "lock-recovered",
        DegradeAction::VictimDropped => "victim-dropped",
        DegradeAction::DeadlineSkipped => "deadline-skipped",
    }
}

/// Peak resident set size of this process in bytes, from the kernel's
/// `VmHWM` high-water mark. `None` off Linux or if the field is absent —
/// the JSON section records `null` rather than a fabricated number.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Writes `contents` to `path` atomically: temp file in the same
/// directory, then rename. A crash between the two leaves either the old
/// artifact (already removed up front in `main`) or nothing — never a
/// partial file at the target path.
fn write_atomic(path: &str, contents: &str) {
    let tmp = format!("{path}.tmp");
    std::fs::write(&tmp, contents).unwrap_or_else(|e| {
        eprintln!("spefbus: cannot write {tmp}: {e}");
        std::process::exit(1);
    });
    std::fs::rename(&tmp, path).unwrap_or_else(|e| {
        eprintln!("spefbus: cannot rename {tmp} into {path}: {e}");
        std::process::exit(1);
    });
}

/// A path-valued flag's operand: missing is a usage error (exit 2), never
/// a silent fallback to the default.
fn string_flag(name: &str, value: Option<String>) -> String {
    value.unwrap_or_else(|| {
        eprintln!("spefbus: missing value for {name}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    })
}

/// Parses a numeric flag value strictly: a missing or unparsable value is
/// a usage error (exit 2), never a silent fallback to the default.
fn numeric_flag(name: &str, value: Option<String>) -> usize {
    match value.as_deref().map(str::parse) {
        Some(Ok(v)) => v,
        Some(Err(_)) => {
            eprintln!(
                "spefbus: invalid value {:?} for {name} (expected a non-negative integer)",
                value.unwrap_or_default()
            );
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
        None => {
            eprintln!("spefbus: missing value for {name}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Everything the `--eco` session run archives into the JSON report.
struct EcoSummary {
    edits: usize,
    committed: usize,
    open_time: Duration,
    median_edit: Duration,
    max_edit: Duration,
    full_time: Duration,
    speedup: f64,
    epoch: u64,
    dirty_nets_per_edit: f64,
    released_cache_entries: u64,
    audits_run: u64,
    audit_max_divergence: f64,
    forced_rollback: bool,
    serviceable_after_rollback: bool,
    replay: Option<(bool, Duration)>,
}

fn main() {
    let mut groups = 8usize;
    let mut threads = 1usize;
    let mut segments = 3usize;
    let mut sdc_path: Option<String> = None;
    let mut json_path = String::from("BENCH_spefbus.json");
    let mut trace_path: Option<String> = None;
    let mut metrics = false;
    // None: no lint. Some(false): lint, gate on deny diagnostics.
    // Some(true): lint, gate on any diagnostic (--lint=deny).
    let mut lint_mode: Option<bool> = None;
    let mut strict_converge = false;
    let mut topo_cache = true;
    // None: the default budget. Some(n): a custom cap, which also arms
    // the capped-vs-unbounded eviction-parity gate.
    let mut cache_budget: Option<usize> = None;
    let mut deadline_ms: Option<usize> = None;
    let mut strict_deadline = false;
    let mut backend = SolverBackend::Sparse;
    let mut inject_spec: Option<String> = None;
    let mut inject_seed = 1u64;
    let mut eco_edits: Option<usize> = None;
    let mut eco_replay = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--groups" => groups = numeric_flag("--groups", args.next()),
            "--threads" => threads = numeric_flag("--threads", args.next()),
            "--segments" => segments = numeric_flag("--segments", args.next()).max(1),
            "--sdc" => sdc_path = Some(string_flag("--sdc", args.next())),
            "--json" => json_path = string_flag("--json", args.next()),
            "--trace" => trace_path = Some(string_flag("--trace", args.next())),
            "--metrics" => metrics = true,
            "--lint" => lint_mode = Some(false),
            "--lint=deny" => lint_mode = Some(true),
            "--strict-converge" => strict_converge = true,
            "--no-topo-cache" => topo_cache = false,
            "--cache-budget" => cache_budget = Some(numeric_flag("--cache-budget", args.next())),
            "--deadline-ms" => deadline_ms = Some(numeric_flag("--deadline-ms", args.next())),
            "--strict-deadline" => strict_deadline = true,
            "--dense-solver" => backend = SolverBackend::Dense,
            "--inject" => {
                let spec = string_flag("--inject", args.next());
                // Validate up front: a typo'd site name is a usage error
                // (exit 2) before any analysis runs, not a silent no-op
                // discovered when the faults gate reports zero fires.
                if let Err(e) = nsta_obs::fault::parse_spec(&spec) {
                    eprintln!("spefbus: invalid --inject spec {spec:?}: {e}");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }
                inject_spec = Some(spec);
            }
            "--inject-seed" => inject_seed = numeric_flag("--inject-seed", args.next()) as u64,
            "--eco" => eco_edits = Some(numeric_flag("--eco", args.next())),
            "--eco-replay" => eco_replay = true,
            "--help" | "-h" => {
                println!("{USAGE}\n\n{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("spefbus: unknown flag {other:?}");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let threads = threads.max(1);
    if eco_replay && eco_edits.is_none() {
        eprintln!("spefbus: --eco-replay requires --eco N");
        eprintln!("{USAGE}");
        std::process::exit(2);
    }
    // Artifacts from a previous run come off disk before any analysis: a
    // panic below must not leave a stale green-looking report behind (the
    // new artifacts are written atomically at the end).
    let _ = std::fs::remove_file(&json_path);
    if let Some(tp) = &trace_path {
        let _ = std::fs::remove_file(tp);
    }
    // Observability: parse/bind spans record up front; the analysis spans
    // come from a dedicated instrumented re-run after the uninstrumented
    // baselines (so the overhead budget is measured against clean runs).
    let observe = trace_path.is_some() || metrics;
    let rec = nsta_obs::recorder();
    if observe {
        rec.enable();
    }
    // Every analysis below starts from this base so one flag switches the
    // whole run between cached and uncached operation (and another between
    // the sparse and dense transient backends).
    let base_opts = SiOptions {
        topo_cache,
        backend,
        cache_budget_bytes: cache_budget.unwrap_or(SiOptions::DEFAULT_CACHE_BUDGET_BYTES),
        ..SiOptions::default()
    };

    eprintln!("characterizing library...");
    let t = Instant::now();
    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )
    .expect("characterization");
    let characterize_time = t.elapsed();

    let design = verilog::parse_design(&netlist(groups)).expect("netlist");
    let spef_text = write_spef(&spef(groups, segments));
    let t = Instant::now();
    let parsed = parse_spef(&spef_text).expect("spef");
    let parse_time = t.elapsed();
    let t = Instant::now();
    let bound = bind_couplings(&parsed, &design, &BindOptions::default()).expect("bind");
    let bind_time = t.elapsed();
    println!(
        "{} groups: SPEF {} bytes, {} nets parsed in {parse_time:.2?}, \
         {} specs bound in {bind_time:.2?}",
        groups,
        spef_text.len(),
        parsed.nets.len(),
        bound.specs.len(),
    );

    if observe {
        // Baselines below must run uninstrumented: they are the reference
        // side of the bit-parity and overhead-budget gates.
        rec.disable();
    }

    let sta = Sta::new(design, lib).expect("sta");
    let c = Constraints::default();

    // SDC read/parse/bind happens ahead of every analysis so the
    // pre-flight lint sees the file-level constraints too; the
    // constrained analysis itself still runs (and is timed) later.
    let sdc_input = sdc_path.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("spefbus: cannot read SDC file {path}: {e}");
            std::process::exit(2);
        });
        let sdc = parse_sdc(&text).unwrap_or_else(|e| {
            eprintln!("spefbus: cannot parse SDC file {path}: {e}");
            std::process::exit(2);
        });
        let bound_sdc = bind_sdc(&sdc, sta.design(), &c).unwrap_or_else(|e| {
            eprintln!("spefbus: cannot bind SDC file {path} onto the design: {e}");
            std::process::exit(2);
        });
        (sdc, bound_sdc)
    });

    // Pre-flight lint: static semantic analysis over netlist + SPEF + SDC
    // before any solve. Strictly read-only — a linted run's timing
    // sections are bit-identical to an unlinted one — and gating: deny
    // diagnostics (or, under --lint=deny, any diagnostic) exit 4 here,
    // before a single transient system is assembled.
    let lint_run = lint_mode.map(|promote| {
        if observe {
            rec.enable(); // capture the lint.run span + rule counters
        }
        let uniform = BoundaryConditions::uniform(&c);
        let boundary = sdc_input
            .as_ref()
            .map_or(&uniform, |(_, bound_sdc)| &bound_sdc.boundary);
        let input = nsta_lint::LintInput {
            design: sta.design(),
            library: sta.library(),
            couplings: &bound.specs,
            boundary,
            spef: Some(&parsed),
            sdc: sdc_input.as_ref().map(|(sdc, _)| sdc),
        };
        let report = nsta_lint::run_lint(&input, &nsta_lint::LintConfig::new());
        if observe {
            rec.disable();
        }
        print!("{}", report.render_human());
        if report.fails(promote) {
            eprintln!(
                "spefbus: pre-flight lint failed at {} level; not running analysis",
                if promote { "deny" } else { "warn" }
            );
            std::process::exit(4);
        }
        (promote, report)
    });

    // The production flow: windows + incremental fixed point, 1 thread.
    let t = Instant::now();
    let filtered = sta
        .analyze_with_crosstalk_windows(c, &bound.specs, &base_opts)
        .expect("windowed analysis");
    let filtered_time = t.elapsed();
    // A capped fixed point that never settled is a result quality issue,
    // not just a statistic: say so loudly, and under --strict-converge
    // refuse to bless the run at all.
    if !filtered.converged() {
        eprintln!(
            "warning: windowed fixed point hit the iteration cap without converging \
             (final window delta {:.3} ps after {} iteration(s))",
            filtered
                .diagnostics
                .final_window_delta()
                .unwrap_or(f64::NAN)
                * 1e12,
            filtered.iterations(),
        );
        if strict_converge {
            eprintln!("--strict-converge: treating non-convergence as fatal");
            std::process::exit(3);
        }
    }
    // Same analysis with the victim cache disabled: every fixed-point
    // iteration re-simulates every victim. The gap to `filtered_time` is
    // what the incremental fixed point buys.
    let t = Instant::now();
    let full_recompute = sta
        .analyze_with_crosstalk_windows(
            c,
            &bound.specs,
            &SiOptions {
                incremental: false,
                ..base_opts.clone()
            },
        )
        .expect("full-recompute analysis");
    let full_recompute_time = t.elapsed();
    // Parity failures collected here gate the JSON artifact at the end.
    let mut parity_failures: Vec<String> = Vec::new();
    // Worker-pool run (skipped at --threads 1); must be bit-identical.
    let threaded_time = (threads > 1).then(|| {
        let t = Instant::now();
        let threaded = sta
            .analyze_with_crosstalk_windows(
                c,
                &bound.specs,
                &SiOptions {
                    threads,
                    ..base_opts.clone()
                },
            )
            .expect("threaded analysis");
        (t.elapsed(), threaded)
    });
    let threaded_time = threaded_time.map(|(elapsed, threaded)| {
        if threaded.report != filtered.report {
            parity_failures.push("threaded report differs from the 1-thread report".into());
        }
        if threaded.adjustments != filtered.adjustments {
            parity_failures
                .push("threaded adjustments differ from the 1-thread adjustments".into());
        }
        elapsed
    });
    // Cached-vs-uncached A/B (skipped when the whole run is uncached):
    // sharing a factorization across victims must not change a single bit
    // of any report.
    let no_cache_time = topo_cache.then(|| {
        let t = Instant::now();
        let uncached = sta
            .analyze_with_crosstalk_windows(
                c,
                &bound.specs,
                &SiOptions {
                    topo_cache: false,
                    ..base_opts.clone()
                },
            )
            .expect("uncached analysis");
        let elapsed = t.elapsed();
        if uncached.report != filtered.report {
            parity_failures.push("topo-cached report differs from the uncached report".into());
        }
        if uncached.adjustments != filtered.adjustments {
            parity_failures
                .push("topo-cached adjustments differ from the uncached adjustments".into());
        }
        elapsed
    });
    // Eviction-parity gate, armed by a custom --cache-budget: the capped
    // run above (the production `filtered` run inherits the budget via
    // base_opts) must be bit-identical to a run with the cap lifted.
    // Eviction may only cost refactors — colliding cache keys are exact
    // bit patterns, so a refactored system reproduces the evicted one's
    // results exactly.
    let budget_parity_run = (topo_cache && cache_budget.is_some()).then(|| {
        let t = Instant::now();
        let unbounded = sta
            .analyze_with_crosstalk_windows(
                c,
                &bound.specs,
                &SiOptions {
                    cache_budget_bytes: usize::MAX,
                    ..base_opts.clone()
                },
            )
            .expect("unbounded-cache analysis");
        let elapsed = t.elapsed();
        if unbounded.report != filtered.report {
            parity_failures
                .push("budget-capped cache report differs from the unbounded-cache report".into());
        }
        if unbounded.adjustments != filtered.adjustments {
            parity_failures.push(
                "budget-capped cache adjustments differ from the unbounded-cache adjustments"
                    .into(),
            );
        }
        elapsed
    });
    // Sparse-vs-dense backend A/B (skipped when the whole run is already
    // dense): both backends integrate the identical trapezoidal systems,
    // so worst arrivals must agree to solver round-off. The wall-clock gap
    // is the sparse backend's payoff, growing with --segments.
    const DENSE_PARITY_TOL: f64 = 1e-18; // 1e-6 ps
    let dense_run = (backend == SolverBackend::Sparse).then(|| {
        let t = Instant::now();
        let dense = sta
            .analyze_with_crosstalk_windows(
                c,
                &bound.specs,
                &SiOptions {
                    backend: SolverBackend::Dense,
                    ..base_opts.clone()
                },
            )
            .expect("dense-backend analysis");
        let elapsed = t.elapsed();
        let (ws, wd) = (
            filtered.report.worst_arrival(),
            dense.report.worst_arrival(),
        );
        // Exact equality first: an empty design reports −inf on both
        // backends, and `−inf − (−inf)` is NaN, not 0.
        let delta = if ws == wd { 0.0 } else { (wd - ws).abs() };
        if !(delta <= DENSE_PARITY_TOL) {
            parity_failures.push(format!(
                "sparse worst arrival differs from dense by {:.3e} ps (tolerance 1e-6 ps)",
                delta * 1e12
            ));
        }
        (elapsed, delta)
    });
    let t = Instant::now();
    let unfiltered = sta
        .analyze_with_crosstalk_windows(
            c,
            &bound.specs,
            &SiOptions {
                use_windows: false,
                ..base_opts.clone()
            },
        )
        .expect("unfiltered analysis");
    let unfiltered_time = t.elapsed();

    // Deadline-governed run: the production analysis repeated under a
    // wall-clock budget with cooperative cancellation. Two acceptable
    // outcomes, both archived in the `governance` JSON section:
    //   * in budget — must be bit-identical to the production run
    //     (deadline polling may never perturb a result), parity-gated;
    //   * expired — a well-formed partial result marked timed_out, with
    //     every skipped victim holding stale nominal timing and listed in
    //     stale_nets(). Degraded operation, not a defect — unless
    //     --strict-deadline promotes it to exit code 5.
    let deadline_run = deadline_ms.map(|budget| {
        let t = Instant::now();
        let analysis = sta
            .analyze_with_crosstalk_windows(
                c,
                &bound.specs,
                &SiOptions {
                    deadline: Some(Deadline::within(Duration::from_millis(budget as u64))),
                    ..base_opts.clone()
                },
            )
            .expect("deadline-governed analysis");
        let elapsed = t.elapsed();
        if analysis.timed_out() {
            eprintln!(
                "warning: --deadline-ms {budget} expired mid-analysis after {} iteration(s); \
                 {} stale net(s) kept nominal timing",
                analysis.iterations(),
                analysis.stale_nets().len(),
            );
            if strict_deadline {
                eprintln!("--strict-deadline: treating the expiry as fatal");
                std::process::exit(5);
            }
        } else {
            if analysis.report != filtered.report {
                parity_failures.push(
                    "deadline-governed report differs from the production report \
                     despite finishing in budget"
                        .into(),
                );
            }
            if analysis.adjustments != filtered.adjustments {
                parity_failures.push(
                    "deadline-governed adjustments differ from the production adjustments \
                     despite finishing in budget"
                        .into(),
                );
            }
        }
        (analysis, elapsed)
    });

    // SDC-constrained run: per-pin arrival windows from a real constraint
    // set (bound up front, before the lint), compared against the
    // uniform-constraint pruning above.
    let sdc_run = sdc_input.as_ref().map(|(_, bound_sdc)| {
        let t = Instant::now();
        let analysis = sta
            .analyze_with_crosstalk_windows(&bound_sdc.boundary, &bound.specs, &base_opts)
            .expect("sdc analysis");
        (analysis, bound_sdc, t.elapsed())
    });
    // Cache reuse is tolerance-based (a victim within `convergence_tol` of
    // its cached key is treated as converged), so the incremental run must
    // match the full recompute to within that tolerance. On THIS fixture
    // the bound is exact: groups are independent (no victim sits downstream
    // of another), so cache keys repeat bit-for-bit across iterations and
    // drift is identically 0 — which makes this assert a cheap tripwire
    // for cache bugs. A future workload with chained victims would make
    // sub-tol drift legitimate; relax the bound if you add one.
    let incremental_drift = filtered
        .report
        .nets()
        .iter()
        .zip(full_recompute.report.nets())
        .flat_map(|(a, b)| [(&a.rise, &b.rise), (&a.fall, &b.fall)])
        .filter_map(|(a, b)| Some((a.as_ref()?.arrival - b.as_ref()?.arrival).abs()))
        .fold(0.0f64, f64::max);
    if incremental_drift > SiOptions::default().convergence_tol {
        parity_failures.push(format!(
            "incremental drift {incremental_drift:e} s exceeds the convergence tolerance"
        ));
    }

    // Observability A/B: repeat the production windowed analysis with the
    // recorder live. Recording must not perturb the analysis (bit
    // parity against the clean baseline) and must stay inside the
    // overhead budget: ≤5% over the matching uninstrumented run, with a
    // 10 ms absolute floor so a few-millisecond CI run is not failed on
    // scheduler noise.
    let obs_run = observe.then(|| {
        rec.enable();
        let t = Instant::now();
        let instrumented = sta
            .analyze_with_crosstalk_windows(
                c,
                &bound.specs,
                &SiOptions {
                    threads,
                    ..base_opts.clone()
                },
            )
            .expect("instrumented analysis");
        let instrumented_time = t.elapsed();
        rec.disable();
        let baseline = if threads > 1 {
            threaded_time.unwrap_or(filtered_time)
        } else {
            filtered_time
        };
        let bit_identical = instrumented.report == filtered.report
            && instrumented.adjustments == filtered.adjustments;
        if !bit_identical {
            parity_failures
                .push("instrumented report differs from the uninstrumented report".into());
        }
        let ratio = instrumented_time.as_secs_f64() / baseline.as_secs_f64().max(1e-12);
        let budget_ok = ratio <= 1.05
            || instrumented_time.saturating_sub(baseline) <= std::time::Duration::from_millis(10);
        if !budget_ok {
            parity_failures.push(format!(
                "instrumentation overhead {:.1}% exceeds the 5% budget \
                 ({instrumented_time:.2?} instrumented vs {baseline:.2?} baseline)",
                (ratio - 1.0) * 100.0
            ));
        }
        (instrumented_time, baseline, ratio, budget_ok, bit_identical)
    });

    // Fault-injection run: deterministic faults forced into named pipeline
    // sites, analyzed under FaultPolicy::Isolate. Recovery is gated like
    // every other parity check: every injected fault must be recovered and
    // the result must land within the dense-parity tolerance of the clean
    // run. Injection is armed only around this one analysis, so every
    // other section of the report stays bit-identical to an uninjected
    // run.
    let faults_run = inject_spec.as_ref().and_then(|spec| {
        // The worker-panic site lives in the cone scheduler's worker
        // closure; containment (versus plain propagation on the inline
        // path) needs an actual pool.
        let inj_threads = if spec.contains("worker-panic") {
            threads.max(2)
        } else {
            threads
        };
        nsta_obs::fault::arm(spec, inject_seed).expect("spec validated at parse time");
        let t = Instant::now();
        let outcome = sta.analyze_with_crosstalk_windows(
            c,
            &bound.specs,
            &SiOptions {
                threads: inj_threads,
                fault_policy: FaultPolicy::Isolate,
                ..base_opts.clone()
            },
        );
        let elapsed = t.elapsed();
        let fired = nsta_obs::fault::fired_counts();
        let injected = nsta_obs::fault::total_fired();
        nsta_obs::fault::disarm();
        match outcome {
            Ok(analysis) => Some((analysis, elapsed, fired, injected)),
            Err(e) => {
                parity_failures.push(format!(
                    "injected run failed outright under FaultPolicy::Isolate: {e}"
                ));
                None
            }
        }
    });
    let faults_summary = faults_run.as_ref().map(|(analysis, _, _, injected)| {
        let dropped = analysis
            .degrade_events()
            .iter()
            .filter(|e| e.action == DegradeAction::VictimDropped)
            .count() as u64;
        let recovered = injected.saturating_sub(dropped);
        let (wc, wi) = (
            filtered.report.worst_arrival(),
            analysis.report.worst_arrival(),
        );
        // Exact equality first: −inf − (−inf) is NaN, not 0.
        let delta = if wc == wi { 0.0 } else { (wi - wc).abs() };
        if *injected == 0 {
            parity_failures.push(
                "--inject armed but no fault fired; raise --groups or change --inject-seed".into(),
            );
        }
        if recovered != *injected {
            parity_failures.push(format!(
                "{injected} fault(s) injected but only {recovered} recovered \
                 ({dropped} victim(s) dropped)"
            ));
        }
        if !(delta <= DENSE_PARITY_TOL) {
            parity_failures.push(format!(
                "fault-recovery worst arrival differs from the clean run by {:.3e} ps \
                 (tolerance 1e-6 ps)",
                delta * 1e12
            ));
        }
        (recovered, delta)
    });

    // Incremental ECO session: a long-lived TimingSession absorbing a
    // deterministic edit stream. Each edit re-solves only the dirtied
    // coupling clusters; the speedup over `full_time` is what the
    // retained-state machinery buys and is gated in CI. The stream is
    // seeded by --inject-seed, so a run is reproducible bit-for-bit.
    let eco_run = eco_edits.map(|edits| {
        let session_opts = SessionOptions {
            si: base_opts.clone(),
            // Shadow-audit cadence: at least one mid-stream audit on any
            // nontrivial run, plus the explicit final audit below.
            audit_every_n: Some(8),
            ..SessionOptions::default()
        };
        let t = Instant::now();
        let mut session = TimingSession::open(
            sta.clone(),
            parsed.clone(),
            BindOptions::default(),
            BoundaryConditions::uniform(&c),
            session_opts,
        )
        .unwrap_or_else(|e| {
            eprintln!("spefbus: cannot open the timing session: {e}");
            std::process::exit(2);
        });
        let open_time = t.elapsed();
        let mut rng = nsta_obs::fault::XorShift64::new(inject_seed.max(1));
        let mut edit_times: Vec<Duration> = Vec::new();
        let mut committed = 0usize;
        let mut dirty_net_total = 0usize;
        for i in 0..edits {
            let g = rng.next_below(groups.max(1) as u64) as usize;
            let edit = match i % 3 {
                0 => Edit::SetLoad {
                    port: format!("y{g}"),
                    farads: (5 + rng.next_below(50)) as f64 * 1e-15,
                },
                1 => Edit::SetDriveResistance {
                    net: format!("v{g}"),
                    ohms: (120 + rng.next_below(240)) as f64,
                },
                _ => {
                    // Re-extract the victim wire with caps scaled by a
                    // deterministic factor in [0.85, 1.15): the ECO that
                    // changes the mesh itself, forcing a rebind and a
                    // cache release for the affected topology keys.
                    let mut dnet = session
                        .spef()
                        .net(&format!("v{g}"))
                        .expect("victim D_NET exists")
                        .clone();
                    let scale = 0.85 + 0.3 * (rng.next_below(1000) as f64 / 1000.0);
                    for cap in &mut dnet.caps {
                        cap.value *= scale;
                    }
                    Edit::ReannotateNet { dnet }
                }
            };
            let t = Instant::now();
            let outcome = session.apply(edit);
            edit_times.push(t.elapsed());
            match outcome {
                EditOutcome::Committed(info) => {
                    committed += 1;
                    dirty_net_total += info.dirty_nets;
                }
                EditOutcome::AuditFailed(f) | EditOutcome::ReadOnly(f) => {
                    eprintln!("spefbus: shadow audit diverged mid-stream: {f}");
                    eprintln!("session quarantined read-only; exiting 6");
                    let _ = std::fs::remove_file(&json_path);
                    std::process::exit(6);
                }
                other => {
                    // The generated stream contains only valid edits: a
                    // rejection or rollback here is a harness bug.
                    parity_failures.push(format!("--eco edit {i} did not commit: {other:?}"));
                }
            }
        }
        // Forced rollback: an edit under an already-expired fake deadline
        // must roll back to the snapshot and leave the session
        // serviceable — the same edit then commits once the deadline is
        // lifted.
        session.set_edit_deadline(Some(Deadline::on_fake(FakeClock::new(0), 0)));
        let doomed = Edit::SetDriveResistance {
            net: "v0".into(),
            ohms: 222.0,
        };
        let before = session.report().clone();
        let forced = session.apply(doomed.clone());
        let forced_rollback =
            matches!(forced, EditOutcome::RolledBack { .. }) && session.report() == &before;
        if !forced_rollback {
            parity_failures.push(format!(
                "--eco forced-rollback edit did not roll back cleanly: {forced:?}"
            ));
        }
        session.set_edit_deadline(None);
        let serviceable = session.apply(doomed).is_committed();
        if !serviceable {
            parity_failures.push("--eco session not serviceable after the forced rollback".into());
        }
        // Final shadow audit: the retained incremental state vs a fresh
        // batch analysis. Divergence quarantines the session (exit 6).
        if let Err(f) = session.audit_now() {
            eprintln!("spefbus: final shadow audit failed: {f}");
            eprintln!("session quarantined read-only; exiting 6");
            let _ = std::fs::remove_file(&json_path);
            std::process::exit(6);
        }
        // The denominator of the speedup gate: a from-scratch batch
        // analysis of the exact final session state.
        let t = Instant::now();
        let full = sta
            .analyze_with_crosstalk_windows(
                session.boundary().clone(),
                session.couplings(),
                &base_opts,
            )
            .expect("full reanalysis of the final session state");
        let full_time = t.elapsed();
        if &full.report != session.report() {
            parity_failures.push(
                "--eco retained report differs from a from-scratch batch of the same state".into(),
            );
        }
        let replay = eco_replay.then(|| {
            let t = Instant::now();
            match session.replay() {
                Ok(fresh) => {
                    let identical = fresh.report() == session.report();
                    if !identical {
                        parity_failures.push(
                            "--eco-replay: journal replay does not reproduce the live session"
                                .into(),
                        );
                    }
                    (identical, t.elapsed())
                }
                Err(e) => {
                    parity_failures.push(format!("--eco-replay failed: {e}"));
                    (false, t.elapsed())
                }
            }
        });
        let mut sorted = edit_times.clone();
        sorted.sort();
        let median_edit = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
        let max_edit = sorted.last().copied().unwrap_or_default();
        let speedup = full_time.as_secs_f64() / median_edit.as_secs_f64().max(1e-12);
        EcoSummary {
            edits,
            committed,
            open_time,
            median_edit,
            max_edit,
            full_time,
            speedup,
            epoch: session.epoch(),
            dirty_nets_per_edit: dirty_net_total as f64 / committed.max(1) as f64,
            released_cache_entries: session.released_cache_entries(),
            audits_run: session.audits_run(),
            audit_max_divergence: session.max_audit_divergence(),
            forced_rollback,
            serviceable_after_rollback: serviceable,
            replay,
        }
    });

    println!(
        "window-filtered: {} pruned aggressor(s), {} iteration(s), converged {}, \
         worst arrival {:.1} ps, {filtered_time:.2?}",
        filtered.pruned.len(),
        filtered.iterations(),
        filtered.converged(),
        filtered.report.worst_arrival() * 1e12,
    );
    println!(
        "full recompute:  max drift {:.3} ps, no victim cache, {full_recompute_time:.2?} \
         (incremental saves {:.1}%)",
        incremental_drift * 1e12,
        100.0 * (1.0 - filtered_time.as_secs_f64() / full_recompute_time.as_secs_f64().max(1e-12)),
    );
    if let Some(threaded) = threaded_time {
        println!("threads={threads}:       bit-identical result, {threaded:.2?}");
    }
    if let Some(uncached) = no_cache_time {
        let total = filtered.cache_hits() + filtered.cache_misses();
        println!(
            "topo cache:      {}/{} hits over {} cones, {} eviction(s), peak {} bytes, \
             bit-identical to uncached ({uncached:.2?} without the cache)",
            filtered.cache_hits(),
            total,
            filtered.cones(),
            filtered.cache_evictions(),
            filtered.cache_bytes(),
        );
    }
    if let Some(unbounded) = budget_parity_run {
        println!(
            "cache budget:    {} bytes, bit-identical to the unbounded cache \
             ({unbounded:.2?} without the cap)",
            base_opts.cache_budget_bytes,
        );
    }
    if let Some((dense_time, delta)) = &dense_run {
        println!(
            "dense solver:    worst arrival matches within {:.3e} ps, {dense_time:.2?} \
             (sparse backend is {:.2}x faster, nnz {})",
            delta * 1e12,
            dense_time.as_secs_f64() / filtered_time.as_secs_f64().max(1e-12),
            filtered.solver_nnz(),
        );
    }
    if let Some((instrumented_time, baseline, ratio, _, _)) = &obs_run {
        println!(
            "instrumented:    bit-identical result, {instrumented_time:.2?} \
             ({:+.1}% vs {baseline:.2?} uninstrumented, {} trace event(s))",
            (ratio - 1.0) * 100.0,
            rec.event_count(),
        );
    }
    println!(
        "unfiltered:      0 pruned aggressor(s), {} iteration(s), worst arrival {:.1} ps, \
         {unfiltered_time:.2?}",
        unfiltered.iterations(),
        unfiltered.report.worst_arrival() * 1e12,
    );
    if let Some((analysis, elapsed)) = &deadline_run {
        println!(
            "deadline:        {} ms budget, timed_out {}, {} stale net(s), \
             worst arrival {:.1} ps, {elapsed:.2?}",
            deadline_ms.unwrap_or(0),
            analysis.timed_out(),
            analysis.stale_nets().len(),
            analysis.report.worst_arrival() * 1e12,
        );
    }
    if let (Some((analysis, elapsed, fired, injected)), Some((recovered, delta))) =
        (&faults_run, &faults_summary)
    {
        let sites: Vec<String> = fired
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, n)| format!("{name}x{n}"))
            .collect();
        println!(
            "fault inject:    {injected} fired ({}), {recovered} recovered, \
             {} degrade event(s), parity {:.3e} ps, {elapsed:.2?}",
            sites.join(" "),
            analysis.degrade_events().len(),
            delta * 1e12,
        );
    }
    if let Some(eco) = &eco_run {
        println!(
            "eco session:     {} edit(s) ({} committed, epoch {}), median {:.2?}/edit vs \
             {:.2?} full reanalysis ({:.1}x), {} audit(s) max div {:.3e} ps, \
             {} cache entr(ies) released, rollback {}{}",
            eco.edits,
            eco.committed,
            eco.epoch,
            eco.median_edit,
            eco.full_time,
            eco.speedup,
            eco.audits_run,
            eco.audit_max_divergence * 1e12,
            eco.released_cache_entries,
            if eco.forced_rollback && eco.serviceable_after_rollback {
                "clean"
            } else {
                "BROKEN"
            },
            match &eco.replay {
                Some((true, d)) => format!(", replay bit-identical in {d:.2?}"),
                Some((false, _)) => ", replay DIVERGED".into(),
                None => String::new(),
            },
        );
    }
    if let Some((analysis, bound_sdc, elapsed)) = &sdc_run {
        let delta = analysis.pruned.len() as i64 - filtered.pruned.len() as i64;
        let slack = analysis.report.worst_slack();
        println!(
            "sdc-windowed:    {} pruned aggressor(s) ({delta:+} vs uniform), {} iteration(s), \
             clock {:.1} ns, worst slack {}, {elapsed:.2?}",
            analysis.pruned.len(),
            analysis.iterations(),
            bound_sdc.clock_period().unwrap_or(f64::NAN) * 1e9,
            if slack.is_finite() {
                format!("{:.1} ps", slack * 1e12)
            } else {
                "unconstrained".into()
            },
        );
    }

    // Parity gates the artifact: a broken run must not leave a
    // green-looking JSON behind for CI to upload.
    if !parity_failures.is_empty() {
        for f in &parity_failures {
            eprintln!("parity failure: {f}");
        }
        let _ = std::fs::remove_file(&json_path);
        eprintln!("parity checks failed; not writing {json_path}");
        std::process::exit(1);
    }

    // Milliseconds rounded to 3 decimals: raw f64 arithmetic renders
    // artifacts like 0.014372999999999999, which makes committed/archived
    // reports needlessly diff-noisy at sub-nanosecond precision nobody
    // reads.
    let ms = |d: std::time::Duration| Json::Num((d.as_secs_f64() * 1e6).round() / 1e3);
    let report = Json::obj([
        ("bench", Json::str("spefbus")),
        ("groups", Json::from(groups)),
        ("threads", Json::from(threads)),
        ("segments", Json::from(segments)),
        (
            "phases_ms",
            Json::obj([
                ("characterize", ms(characterize_time)),
                ("spef_parse", ms(parse_time)),
                ("bind", ms(bind_time)),
                ("windowed_incremental", ms(filtered_time)),
                ("windowed_full_recompute", ms(full_recompute_time)),
                ("windowed_threaded", threaded_time.map_or(Json::Null, ms)),
                ("windowed_no_cache", no_cache_time.map_or(Json::Null, ms)),
                (
                    "windowed_dense",
                    dense_run.as_ref().map_or(Json::Null, |&(d, _)| ms(d)),
                ),
                (
                    "windowed_unbounded_cache",
                    budget_parity_run.map_or(Json::Null, ms),
                ),
                (
                    "windowed_deadline",
                    deadline_run.as_ref().map_or(Json::Null, |(_, e)| ms(*e)),
                ),
                ("unfiltered", ms(unfiltered_time)),
            ]),
        ),
        (
            "solver",
            Json::obj([
                ("backend", Json::str(backend.name())),
                ("nnz", Json::from(filtered.solver_nnz())),
                (
                    "parity_vs_dense",
                    if dense_run.is_some() {
                        // A failed parity check never reaches this point:
                        // the run exits nonzero above without writing JSON.
                        Json::from(true)
                    } else {
                        Json::Null
                    },
                ),
                (
                    "dense_delta_ps",
                    dense_run
                        .as_ref()
                        .map_or(Json::Null, |&(_, d)| Json::Num(d * 1e12)),
                ),
            ]),
        ),
        (
            "cache",
            Json::obj([
                ("enabled", Json::from(topo_cache)),
                ("hits", Json::from(filtered.cache_hits())),
                ("misses", Json::from(filtered.cache_misses())),
                (
                    "hit_rate",
                    match filtered.cache_hits() + filtered.cache_misses() {
                        0 => Json::Null,
                        total => Json::Num(
                            (1e3 * filtered.cache_hits() as f64 / total as f64).round() / 1e3,
                        ),
                    },
                ),
                ("cones", Json::from(filtered.cones())),
                ("budget_bytes", Json::from(base_opts.cache_budget_bytes)),
                ("bytes", Json::from(filtered.cache_bytes())),
                ("evictions", Json::from(filtered.cache_evictions())),
                (
                    "parity_vs_no_cache",
                    if no_cache_time.is_some() {
                        Json::from(true)
                    } else {
                        Json::Null
                    },
                ),
            ]),
        ),
        (
            "windowed",
            Json::obj([
                ("iterations", Json::from(filtered.iterations())),
                ("pruned_aggressors", Json::from(filtered.pruned.len())),
                ("converged", Json::from(filtered.converged())),
                (
                    "final_window_delta_ps",
                    filtered
                        .diagnostics
                        .final_window_delta()
                        .map_or(Json::Null, |d| Json::Num(d * 1e12)),
                ),
                (
                    "worst_arrival_ps",
                    Json::Num(filtered.report.worst_arrival() * 1e12),
                ),
                // The convergence trace: one record per executed
                // fixed-point pass, straight from SiDiagnostics.
                (
                    "convergence",
                    Json::Arr(
                        filtered
                            .diagnostics
                            .iterations
                            .iter()
                            .map(|it| {
                                Json::obj([
                                    ("victims_recomputed", Json::from(it.victims_recomputed)),
                                    ("victims_cached", Json::from(it.victims_cached)),
                                    ("aggressors_pruned", Json::from(it.aggressors_pruned)),
                                    ("max_window_delta_ps", Json::Num(it.max_window_delta * 1e12)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "unfiltered",
            Json::obj([
                ("iterations", Json::from(unfiltered.iterations())),
                (
                    "worst_arrival_ps",
                    Json::Num(unfiltered.report.worst_arrival() * 1e12),
                ),
            ]),
        ),
        (
            "sdc",
            match &sdc_run {
                Some((analysis, bound_sdc, elapsed)) => Json::obj([
                    ("path", Json::str(sdc_path.as_deref().unwrap_or(""))),
                    ("analysis_ms", ms(*elapsed)),
                    (
                        "clock_period_ns",
                        bound_sdc
                            .clock_period()
                            .map_or(Json::Null, |p| Json::Num(p * 1e9)),
                    ),
                    ("iterations", Json::from(analysis.iterations())),
                    ("pruned_aggressors", Json::from(analysis.pruned.len())),
                    (
                        "pruning_delta_vs_uniform",
                        Json::Num(analysis.pruned.len() as f64 - filtered.pruned.len() as f64),
                    ),
                    (
                        "worst_arrival_ps",
                        Json::Num(analysis.report.worst_arrival() * 1e12),
                    ),
                    (
                        "worst_slack_ps",
                        if analysis.report.worst_slack().is_finite() {
                            Json::Num(analysis.report.worst_slack() * 1e12)
                        } else {
                            Json::Null
                        },
                    ),
                    (
                        "false_paths",
                        Json::from(bound_sdc.boundary.false_paths().len()),
                    ),
                ]),
                None => Json::Null,
            },
        ),
        (
            "lint",
            match &lint_run {
                // A failing lint never reaches this point (exit 4 above),
                // so an archived section always describes a passing run.
                Some((promote, lr)) => Json::obj([
                    ("mode", Json::str(if *promote { "deny" } else { "warn" })),
                    ("rules_run", Json::from(lr.rules_run)),
                    ("warnings", Json::from(lr.warn_count())),
                    ("denials", Json::from(lr.deny_count())),
                    ("clean", Json::from(lr.is_clean())),
                    (
                        "diagnostics",
                        Json::Arr(
                            lr.diagnostics
                                .iter()
                                .map(|d| {
                                    Json::obj([
                                        ("rule_id", Json::str(d.rule_id)),
                                        ("severity", Json::str(d.severity.as_str())),
                                        ("subject", Json::str(d.subject.as_str())),
                                        ("message", Json::str(d.message.as_str())),
                                        ("suggestion", Json::str(d.suggestion.as_str())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
                None => Json::Null,
            },
        ),
        (
            "parity",
            Json::obj([
                (
                    "incremental_max_drift_ps",
                    Json::Num(incremental_drift * 1e12),
                ),
                (
                    "threaded_equals_single_thread",
                    if threads > 1 {
                        Json::from(true)
                    } else {
                        Json::Null
                    },
                ),
            ]),
        ),
        // Peak-footprint telemetry: process high-water mark plus the two
        // in-process numbers that dominate it (resident factorizations
        // and the largest single factored system).
        (
            "memory",
            Json::obj([
                (
                    "peak_rss_bytes",
                    peak_rss_bytes().map_or(Json::Null, |b| Json::from(b as usize)),
                ),
                ("cache_peak_bytes", Json::from(filtered.cache_bytes())),
                ("max_factored_nnz", Json::from(filtered.solver_nnz())),
            ]),
        ),
        // Resource-governance outcome: cache budget/evictions, deadline
        // disposition and convergence-governor interventions. The parity
        // flags archive gates that already passed (a failed gate exits
        // nonzero above without writing JSON); CI re-asserts them anyway.
        (
            "governance",
            Json::obj([
                (
                    "cache_budget_bytes",
                    Json::from(base_opts.cache_budget_bytes),
                ),
                ("cache_evictions", Json::from(filtered.cache_evictions())),
                ("cache_peak_bytes", Json::from(filtered.cache_bytes())),
                (
                    "eviction_parity",
                    if budget_parity_run.is_some() {
                        Json::from(true)
                    } else {
                        Json::Null
                    },
                ),
                ("deadline_ms", deadline_ms.map_or(Json::Null, Json::from)),
                (
                    "timed_out",
                    deadline_run
                        .as_ref()
                        .map_or(Json::Null, |(a, _)| Json::from(a.timed_out())),
                ),
                (
                    "stale_nets",
                    deadline_run
                        .as_ref()
                        .map_or(Json::Null, |(a, _)| Json::from(a.stale_nets().len())),
                ),
                (
                    "deadline_parity",
                    match &deadline_run {
                        // Parity is only asserted for in-budget runs; a
                        // timed-out partial result is not comparable.
                        Some((a, _)) if !a.timed_out() => Json::from(true),
                        _ => Json::Null,
                    },
                ),
                (
                    "convergence_governor",
                    Json::from(base_opts.convergence_governor),
                ),
                (
                    "convergence_actions",
                    Json::from(filtered.convergence_actions().len()),
                ),
            ]),
        ),
        (
            "obs",
            match &obs_run {
                // A budget/parity failure never reaches this point (the
                // run exits nonzero above), so these flags archive the
                // gate as passed — CI re-asserts them anyway.
                Some((instrumented_time, baseline, ratio, budget_ok, bit_identical)) => {
                    Json::obj([
                        ("instrumented_ms", ms(*instrumented_time)),
                        ("baseline_ms", ms(*baseline)),
                        ("overhead_ratio", Json::Num((ratio * 1e4).round() / 1e4)),
                        ("overhead_budget_ok", Json::from(*budget_ok)),
                        ("bit_identical", Json::from(*bit_identical)),
                        ("trace_events", Json::from(rec.event_count())),
                    ])
                }
                None => Json::Null,
            },
        ),
        (
            "faults",
            match (&faults_run, &faults_summary) {
                (Some((analysis, elapsed, fired, injected)), Some((recovered, delta))) => {
                    let design = sta.design();
                    Json::obj([
                        ("spec", Json::str(inject_spec.as_deref().unwrap_or(""))),
                        ("seed", Json::from(inject_seed as usize)),
                        ("policy", Json::str("isolate")),
                        ("injected", Json::from(*injected as usize)),
                        ("recovered", Json::from(*recovered as usize)),
                        (
                            "fired",
                            Json::Obj(
                                fired
                                    .iter()
                                    .map(|(name, n)| (name.to_string(), Json::from(*n as usize)))
                                    .collect(),
                            ),
                        ),
                        (
                            "degraded_nets",
                            Json::Arr(
                                analysis
                                    .diagnostics
                                    .degraded_nets()
                                    .iter()
                                    .map(|&n| Json::str(design.net_name(n)))
                                    .collect(),
                            ),
                        ),
                        (
                            "events",
                            Json::Arr(
                                analysis
                                    .degrade_events()
                                    .iter()
                                    .map(|e| {
                                        Json::obj([
                                            (
                                                "net",
                                                e.net.map_or(Json::Null, |n| {
                                                    Json::str(design.net_name(n))
                                                }),
                                            ),
                                            (
                                                "polarity",
                                                e.polarity.map_or(Json::Null, |p| {
                                                    Json::str(if p.is_rise() {
                                                        "rise"
                                                    } else {
                                                        "fall"
                                                    })
                                                }),
                                            ),
                                            ("action", Json::str(action_name(e.action))),
                                            ("cause", Json::str(e.cause.as_str())),
                                            ("recovered", Json::from(e.recovered)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        ("parity_delta_ps", Json::Num(delta * 1e12)),
                        ("analysis_ms", ms(*elapsed)),
                    ])
                }
                _ => Json::Null,
            },
        ),
        // Incremental ECO session outcome. The audit/rollback/replay
        // flags archive gates that already passed (a failed audit exits
        // 6 and a replay mismatch exits 1, both without writing JSON);
        // CI re-asserts them and gates on the speedup.
        (
            "eco",
            match &eco_run {
                Some(eco) => Json::obj([
                    ("edits", Json::from(eco.edits)),
                    ("committed", Json::from(eco.committed)),
                    ("epoch", Json::from(eco.epoch as usize)),
                    ("open_ms", ms(eco.open_time)),
                    ("median_edit_ms", ms(eco.median_edit)),
                    ("max_edit_ms", ms(eco.max_edit)),
                    ("full_reanalysis_ms", ms(eco.full_time)),
                    ("speedup", Json::Num((eco.speedup * 1e2).round() / 1e2)),
                    (
                        "dirty_nets_per_edit",
                        Json::Num((eco.dirty_nets_per_edit * 1e2).round() / 1e2),
                    ),
                    (
                        "released_cache_entries",
                        Json::from(eco.released_cache_entries as usize),
                    ),
                    (
                        "audit",
                        Json::obj([
                            ("runs", Json::from(eco.audits_run as usize)),
                            ("parity", Json::from(true)),
                            (
                                "max_divergence_ps",
                                Json::Num(eco.audit_max_divergence * 1e12),
                            ),
                        ]),
                    ),
                    (
                        "rollback",
                        Json::obj([
                            ("forced", Json::from(eco.forced_rollback)),
                            ("serviceable", Json::from(eco.serviceable_after_rollback)),
                        ]),
                    ),
                    (
                        "replay",
                        match &eco.replay {
                            Some((identical, elapsed)) => Json::obj([
                                ("identical", Json::from(*identical)),
                                ("ms", ms(*elapsed)),
                            ]),
                            None => Json::Null,
                        },
                    ),
                ]),
                None => Json::Null,
            },
        ),
        // The flat counter/gauge snapshot, keys sorted. Dynamic keys, so
        // this builds Json::Obj directly instead of going through
        // Json::obj's static-str convenience.
        (
            "metrics",
            if metrics {
                Json::Obj(
                    rec.metrics()
                        .values
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Num(*v)))
                        .collect(),
                )
            } else {
                Json::Null
            },
        ),
    ]);
    write_atomic(&json_path, &(report.render() + "\n"));
    println!("wrote {json_path}");
    if let Some(tp) = &trace_path {
        // pid 1: one analysis process per trace. Worker threads appear
        // as distinct tids in first-use order.
        write_atomic(tp, &rec.chrome_trace(1));
        println!("wrote {tp} ({} event(s))", rec.event_count());
    }

    // Per-iteration cost of the production mode, measured properly.
    if groups <= 8 {
        microbench::bench("spefbus/windowed_analysis", || {
            sta.analyze_with_crosstalk_windows(c, &bound.specs, &base_opts)
                .expect("analysis")
        });
    }
}
