//! SPEF-driven STA workload: a synthetic coupled bus pushed through the
//! full parse → bind → window-filter → crosstalk pipeline.
//!
//! Generates `--groups` independent victim/aggressor groups. Group `i`'s
//! far aggressor sits behind a chain of `2i + 1` inverters, so early
//! groups keep both aggressors inside the victim's switching window while
//! later groups get their far aggressor pruned — exercising both branches
//! of the temporal-correlation filter at scale. The run reports binding
//! statistics, pruning counts, fixed-point iterations and wall-clock time
//! with and without the window filter.
//!
//! Usage: `spefbus [--groups N]`

use nsta_bench::microbench;
use nsta_liberty::characterize::{inverter_family, Options};
use nsta_parasitics::ast::{CapElem, DNet, SpefFile, SpefNode, Units};
use nsta_parasitics::{bind_couplings, parse_spef, write_spef, BindOptions};
use nsta_spice::Process;
use nsta_sta::{verilog, Constraints, SiOptions, Sta};
use std::fmt::Write as _;
use std::time::Instant;

/// Gate-level netlist of `groups` independent victim/aggressor groups.
fn netlist(groups: usize) -> String {
    let mut src = String::from("module bus (");
    let mut ports = Vec::new();
    for g in 0..groups {
        ports.extend([format!("a{g}"), format!("b{g}"), format!("c{g}")]);
        ports.extend([format!("y{g}"), format!("z{g}"), format!("w{g}")]);
    }
    src.push_str(&ports.join(", "));
    src.push_str(");\n");
    for g in 0..groups {
        let _ = writeln!(src, "input a{g}, b{g}, c{g}; output y{g}, z{g}, w{g};");
    }
    for g in 0..groups {
        let stages = 2 * g + 1;
        let _ = writeln!(src, "wire v{g}, gn{g}, gf{g};");
        let _ = writeln!(src, "INVX1 u{g}_1 (.A(a{g}), .Y(v{g}));");
        let _ = writeln!(src, "INVX4 u{g}_2 (.A(v{g}), .Y(y{g}));");
        let _ = writeln!(src, "INVX1 u{g}_3 (.A(b{g}), .Y(gn{g}));");
        let _ = writeln!(src, "INVX4 u{g}_4 (.A(gn{g}), .Y(z{g}));");
        let mut prev = format!("c{g}");
        for s in 1..stages {
            let _ = writeln!(src, "wire f{g}_{s};");
            let _ = writeln!(src, "INVX1 c{g}_{s} (.A({prev}), .Y(f{g}_{s}));");
            prev = format!("f{g}_{s}");
        }
        let _ = writeln!(src, "INVX1 c{g}_{stages} (.A({prev}), .Y(gf{g}));");
        let _ = writeln!(src, "INVX4 u{g}_5 (.A(gf{g}), .Y(w{g}));");
    }
    src.push_str("endmodule\n");
    src
}

/// A Figure-1-style extraction of every victim wire, built through the
/// parasitics AST and round-tripped through the canonical writer (so the
/// workload also exercises write → parse at scale).
fn spef(groups: usize) -> SpefFile {
    let seg_r = 8.5;
    let seg_c = 9.6e-15;
    let mut nets = Vec::new();
    for g in 0..groups {
        let victim = format!("v{g}");
        let near = format!("gn{g}");
        let far = format!("gf{g}");
        let mut caps = Vec::new();
        for (k, seg) in ["1", "2", "3"].iter().enumerate() {
            caps.push(CapElem {
                id: (k + 1) as u64,
                a: SpefNode::sub(&victim, seg),
                b: None,
                value: seg_c,
            });
        }
        caps.push(CapElem {
            id: 4,
            a: SpefNode::sub(&victim, "1"),
            b: Some(SpefNode::sub(&near, "1")),
            value: 50e-15,
        });
        caps.push(CapElem {
            id: 5,
            a: SpefNode::sub(&victim, "2"),
            b: Some(SpefNode::sub(&far, "1")),
            value: 50e-15,
        });
        let mut ress = Vec::new();
        let mut prev = SpefNode::net(&victim);
        for (k, seg) in ["1", "2", "3"].iter().enumerate() {
            let next = SpefNode::sub(&victim, seg);
            ress.push(nsta_parasitics::ResElem {
                id: (k + 1) as u64,
                a: prev,
                b: next.clone(),
                value: seg_r,
            });
            prev = next;
        }
        nets.push(DNet {
            name: victim,
            total_cap: 3.0 * seg_c + 100e-15,
            conns: Vec::new(),
            caps,
            ress,
        });
    }
    SpefFile {
        design: "bus".into(),
        divider: '/',
        delimiter: ':',
        units: Units::default(),
        ports: Vec::new(),
        nets,
    }
}

fn main() {
    let mut groups = 8usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--groups" {
            groups = args.next().and_then(|v| v.parse().ok()).unwrap_or(8);
        }
    }

    eprintln!("characterizing library...");
    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )
    .expect("characterization");

    let design = verilog::parse_design(&netlist(groups)).expect("netlist");
    let spef_text = write_spef(&spef(groups));
    let t = Instant::now();
    let parsed = parse_spef(&spef_text).expect("spef");
    let parse_time = t.elapsed();
    let t = Instant::now();
    let bound = bind_couplings(&parsed, &design, &BindOptions::default()).expect("bind");
    let bind_time = t.elapsed();
    println!(
        "{} groups: SPEF {} bytes, {} nets parsed in {parse_time:.2?}, \
         {} specs bound in {bind_time:.2?}",
        groups,
        spef_text.len(),
        parsed.nets.len(),
        bound.specs.len(),
    );

    let sta = Sta::new(design, lib).expect("sta");
    let c = Constraints::default();

    let t = Instant::now();
    let filtered = sta
        .analyze_with_crosstalk_windows(&c, &bound.specs, &SiOptions::default())
        .expect("windowed analysis");
    let filtered_time = t.elapsed();
    let t = Instant::now();
    let unfiltered = sta
        .analyze_with_crosstalk_windows(
            &c,
            &bound.specs,
            &SiOptions {
                use_windows: false,
                ..SiOptions::default()
            },
        )
        .expect("unfiltered analysis");
    let unfiltered_time = t.elapsed();

    println!(
        "window-filtered: {} pruned aggressor(s), {} iteration(s), converged {}, \
         worst arrival {:.1} ps, {filtered_time:.2?}",
        filtered.pruned.len(),
        filtered.iterations,
        filtered.converged,
        filtered.report.worst_arrival() * 1e12,
    );
    println!(
        "unfiltered:      0 pruned aggressor(s), {} iteration(s), worst arrival {:.1} ps, \
         {unfiltered_time:.2?}",
        unfiltered.iterations,
        unfiltered.report.worst_arrival() * 1e12,
    );

    // Per-iteration cost of the two modes, measured properly.
    if groups <= 8 {
        microbench::bench("spefbus/windowed_analysis", || {
            sta.analyze_with_crosstalk_windows(&c, &bound.specs, &SiOptions::default())
                .expect("analysis")
        });
    }
}
