//! Noise-injection workloads: aggressor alignment cases.
//!
//! The paper analyzes "200 noise injection timing cases in a range of 1 ns"
//! per configuration: the aggressor transition is swept across a window
//! centered on the victim transition. [`skew_sweep`] reproduces that
//! deterministic sweep; [`random_pairs`] adds an independent-aggressor
//! variant for the two-aggressor configuration.

/// Minimal deterministic PRNG (xorshift64*) so workloads stay reproducible
/// without an external dependency; the container builds fully offline.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero fixed point; mix the seed once (splitmix64).
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift64 {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[lo, hi]`.
    fn gen_range(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * unit
    }
}

/// One noise-injection case: the skew of each aggressor's transition
/// relative to the victim's (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct SkewCase {
    /// Per-aggressor skew values.
    pub skews: Vec<f64>,
}

/// A uniform sweep of `cases` alignments over `[-half_range, +half_range]`,
/// with all aggressors switching together (the paper's single sweep knob).
///
/// # Panics
///
/// Panics if `cases < 2` or `aggressors == 0` — workload construction is
/// programmer-controlled.
pub fn skew_sweep(aggressors: usize, cases: usize, half_range: f64) -> Vec<SkewCase> {
    assert!(cases >= 2, "need at least two cases");
    assert!(aggressors >= 1, "need at least one aggressor");
    (0..cases)
        .map(|k| {
            let s = -half_range + 2.0 * half_range * k as f64 / (cases - 1) as f64;
            SkewCase {
                skews: vec![s; aggressors],
            }
        })
        .collect()
}

/// Independent per-aggressor skews drawn uniformly from
/// `[-half_range, +half_range]` with a fixed seed (reproducible).
///
/// # Panics
///
/// Panics if `cases == 0` or `aggressors == 0`.
pub fn random_pairs(aggressors: usize, cases: usize, half_range: f64, seed: u64) -> Vec<SkewCase> {
    assert!(cases >= 1, "need at least one case");
    assert!(aggressors >= 1, "need at least one aggressor");
    let mut rng = XorShift64::seed_from_u64(seed);
    (0..cases)
        .map(|_| SkewCase {
            skews: (0..aggressors)
                .map(|_| rng.gen_range(-half_range, half_range))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_range_symmetrically() {
        let cases = skew_sweep(1, 5, 0.5e-9);
        assert_eq!(cases.len(), 5);
        assert!((cases[0].skews[0] + 0.5e-9).abs() < 1e-18);
        assert!((cases[4].skews[0] - 0.5e-9).abs() < 1e-18);
        assert!((cases[2].skews[0]).abs() < 1e-18);
    }

    #[test]
    fn sweep_moves_all_aggressors_together() {
        let cases = skew_sweep(2, 3, 0.5e-9);
        for c in &cases {
            assert_eq!(c.skews.len(), 2);
            assert_eq!(c.skews[0], c.skews[1]);
        }
    }

    #[test]
    fn random_pairs_are_reproducible_and_bounded() {
        let a = random_pairs(2, 10, 0.5e-9, 42);
        let b = random_pairs(2, 10, 0.5e-9, 42);
        assert_eq!(a, b);
        let c = random_pairs(2, 10, 0.5e-9, 43);
        assert_ne!(a, c);
        for case in &a {
            for &s in &case.skews {
                assert!(s.abs() <= 0.5e-9);
            }
        }
    }
}
