# Sample constraint set for the spefbus workload (any --groups >= 1).
# Times in ns, capacitances in pF. Gives the group-0 victim source a
# genuine [0.02, 0.1] ns arrival window, declares the group-0 near
# aggressor's source late enough that its switching window can no longer
# reach the victim (the pruning delta spefbus reports), requires the
# outputs 0.5 ns before the 4 ns clock edge, and falsifies the group-0
# far-aggressor chain.
create_clock -name clk -period 4
set_input_delay 0.02 -clock clk -min [get_ports a0]
set_input_delay 0.1 -clock clk -max [get_ports a0]
set_input_delay 2.0 -clock clk -min [get_ports b0]
set_input_delay 2.2 -clock clk -max [get_ports b0]
set_input_transition 0.1 [get_ports {a0 b0 c0}]
set_output_delay 0.5 -clock clk [get_ports {y0 z0 w0}]
set_load 0.005 [get_ports y0]
set_false_path -from [get_ports c0] -to [get_ports w0]
