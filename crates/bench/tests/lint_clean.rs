//! The generated bench workload must be lint-clean.
//!
//! `spefbus --lint=deny` gates this in CI, but through the binary; this
//! test pins it at the library level against the exact generators, at the
//! `--groups 64` scale the ROADMAP tracks, with every rule promoted to
//! deny — so a generator regression (say, a victim coupling to a wire the
//! netlist no longer declares) fails in `cargo test` before it fails in a
//! release bench run.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use nsta_bench::busgen::{netlist, spef};
use nsta_liberty::characterize::{inverter_family, Options};
use nsta_lint::{run_lint, LintConfig, LintInput, Severity, RULES};
use nsta_parasitics::{bind_couplings, parse_spef, write_spef, BindOptions};
use nsta_spice::Process;
use nsta_sta::{verilog, BoundaryConditions, Sta};

#[test]
fn groups_64_design_lints_clean_at_deny_level() {
    let groups = 64;
    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )
    .unwrap();
    let design = verilog::parse_design(&netlist(groups)).unwrap();
    // Round-trip through the writer exactly as spefbus does.
    let parsed = parse_spef(&write_spef(&spef(groups, 3))).unwrap();
    let bound = bind_couplings(&parsed, &design, &BindOptions::default()).unwrap();
    assert_eq!(bound.specs.len(), groups, "one victim spec per group");
    let sta = Sta::new(design, lib).unwrap();

    let mut config = LintConfig::new();
    for rule in RULES {
        assert!(config.set(rule.id, Severity::Deny));
    }
    let boundary = BoundaryConditions::default();
    let input = LintInput {
        design: sta.design(),
        library: sta.library(),
        couplings: &bound.specs,
        boundary: &boundary,
        spef: Some(&parsed),
        sdc: None,
    };
    let report = run_lint(&input, &config);
    assert!(
        report.is_clean(),
        "bench workload must produce zero diagnostics:\n{}",
        report.render_human()
    );
    assert_eq!(report.rules_run, RULES.len());
    assert!(!report.fails(true));
}
