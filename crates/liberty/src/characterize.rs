//! Cell characterization: filling NLDM tables from transistor-level
//! simulation, the way production libraries are built.
//!
//! For every (input slew × output load) grid point the cell is simulated
//! with a saturated-ramp input; the propagation delay (mid-rail to
//! mid-rail) and output transition time (10–90%) populate the four NLDM
//! tables of each arc.

use crate::library::{Cell, Direction, Library, NldmTable, Pin, TimingArc, TimingSense};
use crate::LibertyError;
use nsta_spice::{cells, Netlist, Process, SimOptions};
use nsta_waveform::{Polarity, Thresholds, Waveform};

/// Characterization grid and simulation settings.
#[derive(Debug, Clone)]
pub struct Options {
    /// Input slew axis (seconds, 10–90%).
    pub slews: Vec<f64>,
    /// Output load axis (farads).
    pub loads: Vec<f64>,
    /// Transient step (seconds).
    pub dt: f64,
}

impl Options {
    /// Production-style 5 × 5 grid.
    pub fn standard() -> Self {
        Options {
            slews: vec![30e-12, 60e-12, 120e-12, 240e-12, 480e-12],
            loads: vec![2e-15, 5e-15, 10e-15, 20e-15, 40e-15],
            dt: 1e-12,
        }
    }

    /// Coarse 3 × 3 grid for fast unit tests.
    pub fn fast_test() -> Self {
        Options {
            slews: vec![60e-12, 150e-12, 300e-12],
            loads: vec![2e-15, 10e-15, 40e-15],
            dt: 2e-12,
        }
    }
}

/// One measured grid point.
struct Measurement {
    delay: f64,
    out_slew: f64,
}

/// Simulates one inverter instance and measures delay/slew for the given
/// input polarity.
fn measure_inverter(
    proc: &Process,
    size: f64,
    slew: f64,
    load: f64,
    input_rising: bool,
    dt: f64,
) -> Result<Measurement, LibertyError> {
    let th = Thresholds::cmos(proc.vdd);
    let full = slew / 0.8;
    let mid = 0.2e-9 + full / 2.0;
    let t_stop = mid + full / 2.0 + 2.0e-9;
    let (v0, v1) = if input_rising {
        (0.0, proc.vdd)
    } else {
        (proc.vdd, 0.0)
    };
    let ramp = Waveform::new(
        vec![0.0, mid - full / 2.0, mid + full / 2.0, t_stop],
        vec![v0, v0, v1, v1],
    )?;

    let mut net = Netlist::new(proc.vdd);
    let inp = net.node("in");
    let out = net.node("out");
    cells::add_inverter(&mut net, proc, size, inp, out, "dut")?;
    cells::add_load_cap(&mut net, out, load)?;
    net.vsource(inp, ramp)?;
    let res = net.run_transient(SimOptions::new(0.0, t_stop, dt)?)?;
    let v_out = res.voltage(out)?;
    let out_pol = if input_rising {
        Polarity::Fall
    } else {
        Polarity::Rise
    };
    let t_out = v_out.last_crossing_or_err(th.mid())?;
    let delay = t_out - mid;
    let out_slew = v_out.slew_first_to_first(th, out_pol)?;
    Ok(Measurement { delay, out_slew })
}

/// Characterizes one inverter as a library [`Cell`].
///
/// # Errors
///
/// Propagates simulation and measurement failures; fails fast on empty
/// grids.
pub fn inverter_cell(
    proc: &Process,
    name: &str,
    size: f64,
    opts: &Options,
) -> Result<Cell, LibertyError> {
    if opts.slews.len() < 2 || opts.loads.len() < 2 {
        return Err(LibertyError::Semantic(
            "characterization grid needs at least 2x2".into(),
        ));
    }
    let n1 = opts.slews.len();
    let n2 = opts.loads.len();
    let mut rise_delay = Vec::with_capacity(n1 * n2);
    let mut rise_slew = Vec::with_capacity(n1 * n2);
    let mut fall_delay = Vec::with_capacity(n1 * n2);
    let mut fall_slew = Vec::with_capacity(n1 * n2);
    for &slew in &opts.slews {
        for &load in &opts.loads {
            // Output rise ⇐ input falls (negative unate).
            let rise = measure_inverter(proc, size, slew, load, false, opts.dt)?;
            rise_delay.push(rise.delay);
            rise_slew.push(rise.out_slew);
            let fall = measure_inverter(proc, size, slew, load, true, opts.dt)?;
            fall_delay.push(fall.delay);
            fall_slew.push(fall.out_slew);
        }
    }
    let table = |values: Vec<f64>| NldmTable::new(opts.slews.clone(), opts.loads.clone(), values);
    let arc = TimingArc {
        related_pin: "A".into(),
        sense: TimingSense::NegativeUnate,
        cell_rise: table(rise_delay)?,
        rise_transition: table(rise_slew)?,
        cell_fall: table(fall_delay)?,
        fall_transition: table(fall_slew)?,
    };
    Ok(Cell {
        name: name.into(),
        area: 1.6 * size,
        pins: vec![
            Pin {
                name: "A".into(),
                direction: Direction::Input,
                capacitance: proc.inverter_input_cap(size),
                function: None,
                timing: vec![],
            },
            Pin {
                name: "Y".into(),
                direction: Direction::Output,
                capacitance: 0.0,
                function: Some("!A".into()),
                timing: vec![arc],
            },
        ],
    })
}

/// Characterizes a family of inverter sizes into a [`Library`].
///
/// # Errors
///
/// Propagates per-cell characterization failures.
pub fn inverter_family(
    proc: &Process,
    sizes: &[(&str, f64)],
    opts: &Options,
) -> Result<Library, LibertyError> {
    let mut lib = Library::new("nsta013", proc.vdd);
    for &(name, size) in sizes {
        lib.push_cell(inverter_cell(proc, name, size, opts)?);
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::parse_library;

    #[test]
    fn characterized_tables_are_physically_monotone() {
        let proc = Process::c013();
        let cell = inverter_cell(&proc, "INVX1", 1.0, &Options::fast_test()).unwrap();
        let arc = &cell.output().unwrap().timing[0];
        // Delay grows with load at fixed slew...
        let d_small = arc.cell_fall.lookup(150e-12, 2e-15).unwrap();
        let d_large = arc.cell_fall.lookup(150e-12, 40e-15).unwrap();
        assert!(d_large > d_small, "{d_large} vs {d_small}");
        // ...and with input slew at fixed load.
        let d_fast = arc.cell_fall.lookup(60e-12, 10e-15).unwrap();
        let d_slow = arc.cell_fall.lookup(300e-12, 10e-15).unwrap();
        assert!(d_slow > d_fast);
        // Output slew grows with load.
        let s_small = arc.fall_transition.lookup(150e-12, 2e-15).unwrap();
        let s_large = arc.fall_transition.lookup(150e-12, 40e-15).unwrap();
        assert!(s_large > s_small);
        // Magnitudes are picosecond-scale, not garbage.
        assert!(d_small > 1e-12 && d_small < 1e-9);
    }

    #[test]
    fn family_round_trips_through_liberty_text() {
        let proc = Process::c013();
        let lib = inverter_family(
            &proc,
            &[("INVX1", 1.0), ("INVX4", 4.0)],
            &Options::fast_test(),
        )
        .unwrap();
        let text = lib.to_liberty();
        let parsed = parse_library(&text).unwrap();
        assert_eq!(parsed.cells().len(), 2);
        // Larger cell is faster at the same point.
        let d1 = parsed.cell("INVX1").unwrap().output().unwrap().timing[0]
            .cell_fall
            .lookup(150e-12, 20e-15)
            .unwrap();
        let d4 = parsed.cell("INVX4").unwrap().output().unwrap().timing[0]
            .cell_fall
            .lookup(150e-12, 20e-15)
            .unwrap();
        assert!(d4 < d1);
        // Input capacitance scales with size.
        let c1 = parsed.cell("INVX1").unwrap().pin("A").unwrap().capacitance;
        let c4 = parsed.cell("INVX4").unwrap().pin("A").unwrap().capacitance;
        assert!((c4 / c1 - 4.0).abs() < 0.01);
    }

    #[test]
    fn tiny_grids_are_rejected() {
        let proc = Process::c013();
        let opts = Options {
            slews: vec![100e-12],
            loads: vec![1e-15, 2e-15],
            dt: 2e-12,
        };
        assert!(inverter_cell(&proc, "X", 1.0, &opts).is_err());
    }
}
