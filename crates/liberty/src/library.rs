//! Semantic library model over the generic AST, with NLDM lookup.

use crate::ast::{Group, Value};
use crate::parser::parse_group;
use crate::writer::write_group;
use crate::LibertyError;
use nsta_numeric::interp;

/// Pin direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Input pin.
    Input,
    /// Output pin.
    Output,
}

/// Unateness of a timing arc (only the unate senses appear in this
/// workspace's cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingSense {
    /// Output falls when the related input rises (inverter-like).
    NegativeUnate,
    /// Output rises when the related input rises (buffer-like).
    PositiveUnate,
}

impl TimingSense {
    fn as_liberty(self) -> &'static str {
        match self {
            TimingSense::NegativeUnate => "negative_unate",
            TimingSense::PositiveUnate => "positive_unate",
        }
    }
}

/// A 2-D NLDM table: values over input slew (`index_1`) × output load
/// (`index_2`). All quantities SI (seconds, farads).
#[derive(Debug, Clone, PartialEq)]
pub struct NldmTable {
    index1: Vec<f64>,
    index2: Vec<f64>,
    /// Row-major: `values[i1 * index2.len() + i2]`, seconds.
    values: Vec<f64>,
}

impl NldmTable {
    /// Builds a table, validating axes and shape.
    ///
    /// # Errors
    ///
    /// [`LibertyError::Table`] for non-monotone axes or shape mismatch.
    pub fn new(index1: Vec<f64>, index2: Vec<f64>, values: Vec<f64>) -> Result<Self, LibertyError> {
        interp::validate_grid(&index1, 2)?;
        interp::validate_grid(&index2, 2)?;
        if values.len() != index1.len() * index2.len() {
            return Err(LibertyError::Semantic(format!(
                "table needs {} values, got {}",
                index1.len() * index2.len(),
                values.len()
            )));
        }
        Ok(NldmTable {
            index1,
            index2,
            values,
        })
    }

    /// Input-slew axis (seconds).
    pub fn slews(&self) -> &[f64] {
        &self.index1
    }

    /// Load axis (farads).
    pub fn loads(&self) -> &[f64] {
        &self.index2
    }

    /// Bilinear lookup with linear extrapolation outside the grid — the
    /// conventional NLDM behaviour.
    ///
    /// # Errors
    ///
    /// [`LibertyError::Table`] only on internal shape corruption.
    pub fn lookup(&self, slew: f64, load: f64) -> Result<f64, LibertyError> {
        Ok(interp::bilinear(
            &self.index1,
            &self.index2,
            &self.values,
            slew,
            load,
        )?)
    }
}

/// A timing arc from a related input pin to the owning output pin.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingArc {
    /// The input pin this arc responds to.
    pub related_pin: String,
    /// Arc unateness.
    pub sense: TimingSense,
    /// Output-rise delay table.
    pub cell_rise: NldmTable,
    /// Output-rise transition (slew) table.
    pub rise_transition: NldmTable,
    /// Output-fall delay table.
    pub cell_fall: NldmTable,
    /// Output-fall transition (slew) table.
    pub fall_transition: NldmTable,
}

/// A library pin.
#[derive(Debug, Clone, PartialEq)]
pub struct Pin {
    /// Pin name.
    pub name: String,
    /// Direction.
    pub direction: Direction,
    /// Input capacitance (farads); zero for outputs.
    pub capacitance: f64,
    /// Logic function of an output pin (e.g. `"!A"`).
    pub function: Option<String>,
    /// Timing arcs (outputs only).
    pub timing: Vec<TimingArc>,
}

/// A library cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Cell name.
    pub name: String,
    /// Area in library units.
    pub area: f64,
    /// Pins in declaration order.
    pub pins: Vec<Pin>,
}

impl Cell {
    /// Looks up a pin by name.
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// The first output pin, if any.
    pub fn output(&self) -> Option<&Pin> {
        self.pins.iter().find(|p| p.direction == Direction::Output)
    }

    /// Input pins in declaration order.
    pub fn inputs(&self) -> impl Iterator<Item = &Pin> {
        self.pins.iter().filter(|p| p.direction == Direction::Input)
    }
}

/// A characterized cell library.
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    /// Library name.
    pub name: String,
    /// Nominal supply voltage (volts).
    pub voltage: f64,
    cells: Vec<Cell>,
}

/// Liberty time unit used on output: nanoseconds.
const TIME_SCALE: f64 = 1e-9;
/// Liberty capacitance unit used on output: picofarads.
const CAP_SCALE: f64 = 1e-12;

impl Library {
    /// Creates an empty library.
    pub fn new(name: &str, voltage: f64) -> Self {
        Library {
            name: name.into(),
            voltage,
            cells: Vec::new(),
        }
    }

    /// Adds a cell.
    pub fn push_cell(&mut self, cell: Cell) {
        self.cells.push(cell);
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Looks up a cell by name.
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cells.iter().find(|c| c.name == name)
    }

    /// Serializes to Liberty text (ns / pF units).
    pub fn to_liberty(&self) -> String {
        let mut lib = Group::named("library", &self.name);
        lib.set("time_unit", Value::Str("1ns".into()));
        lib.set("voltage_unit", Value::Str("1V".into()));
        lib.set("nom_voltage", Value::Number(self.voltage));
        lib.set_complex(
            "capacitive_load_unit",
            vec![Value::Number(1.0), Value::Ident("pf".into())],
        );
        for cell in &self.cells {
            let mut cg = Group::named("cell", &cell.name);
            cg.set("area", Value::Number(cell.area));
            for pin in &cell.pins {
                let mut pg = Group::named("pin", &pin.name);
                let dir = match pin.direction {
                    Direction::Input => "input",
                    Direction::Output => "output",
                };
                pg.set("direction", Value::Ident(dir.into()));
                if pin.direction == Direction::Input {
                    pg.set("capacitance", Value::Number(pin.capacitance / CAP_SCALE));
                }
                if let Some(f) = &pin.function {
                    pg.set("function", Value::Str(f.clone()));
                }
                for arc in &pin.timing {
                    let mut tg = Group {
                        name: "timing".into(),
                        ..Group::default()
                    };
                    tg.set("related_pin", Value::Str(arc.related_pin.clone()));
                    tg.set("timing_sense", Value::Ident(arc.sense.as_liberty().into()));
                    for (name, table) in [
                        ("cell_rise", &arc.cell_rise),
                        ("rise_transition", &arc.rise_transition),
                        ("cell_fall", &arc.cell_fall),
                        ("fall_transition", &arc.fall_transition),
                    ] {
                        tg.groups.push(table_to_ast(name, table));
                    }
                    pg.groups.push(tg);
                }
                cg.groups.push(pg);
            }
            lib.groups.push(cg);
        }
        write_group(&lib)
    }
}

fn number_list(values: &[f64], scale: f64) -> String {
    values
        .iter()
        .map(|v| format!("{}", v / scale))
        .collect::<Vec<_>>()
        .join(", ")
}

fn table_to_ast(name: &str, table: &NldmTable) -> Group {
    let mut g = Group::named(name, "delay_template");
    g.set_complex(
        "index_1",
        vec![Value::Str(number_list(table.slews(), TIME_SCALE))],
    );
    g.set_complex(
        "index_2",
        vec![Value::Str(number_list(table.loads(), CAP_SCALE))],
    );
    let rows: Vec<Value> = table
        .index1
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let row = &table.values[i * table.index2.len()..(i + 1) * table.index2.len()];
            Value::Str(number_list(row, TIME_SCALE))
        })
        .collect();
    g.set_complex("values", rows);
    g
}

fn parse_number_list(text: &str, scale: f64) -> Result<Vec<f64>, LibertyError> {
    text.split(',')
        .map(|s| {
            s.trim()
                .parse::<f64>()
                .map(|v| v * scale)
                .map_err(|_| LibertyError::Semantic(format!("bad number {s:?} in list")))
        })
        .collect()
}

fn table_from_ast(g: &Group) -> Result<NldmTable, LibertyError> {
    let index1 = g
        .complex_attr("index_1")
        .and_then(|a| a.values.first())
        .and_then(Value::as_text)
        .ok_or_else(|| LibertyError::Semantic(format!("{} missing index_1", g.name)))?;
    let index2 = g
        .complex_attr("index_2")
        .and_then(|a| a.values.first())
        .and_then(Value::as_text)
        .ok_or_else(|| LibertyError::Semantic(format!("{} missing index_2", g.name)))?;
    let index1 = parse_number_list(index1, TIME_SCALE)?;
    let index2 = parse_number_list(index2, CAP_SCALE)?;
    let rows = g
        .complex_attr("values")
        .ok_or_else(|| LibertyError::Semantic(format!("{} missing values", g.name)))?;
    let mut values = Vec::with_capacity(index1.len() * index2.len());
    for row in &rows.values {
        let text = row
            .as_text()
            .ok_or_else(|| LibertyError::Semantic("values rows must be strings".into()))?;
        values.extend(parse_number_list(text, TIME_SCALE)?);
    }
    NldmTable::new(index1, index2, values)
}

/// Parses Liberty text into the semantic [`Library`] model.
///
/// # Errors
///
/// Lex/parse errors with positions, or [`LibertyError::Semantic`] for
/// structurally valid but meaningless input.
pub fn parse_library(source: &str) -> Result<Library, LibertyError> {
    let root = parse_group(source)?;
    if root.name != "library" {
        return Err(LibertyError::Semantic(format!(
            "expected a library group, found {}",
            root.name
        )));
    }
    let name = root.arg_text().unwrap_or("unnamed").to_string();
    let voltage = root
        .simple_attr("nom_voltage")
        .and_then(Value::as_number)
        .unwrap_or(1.2);
    let mut lib = Library::new(&name, voltage);
    for cg in root.groups_named("cell") {
        let cell_name = cg
            .arg_text()
            .ok_or_else(|| LibertyError::Semantic("cell without a name".into()))?
            .to_string();
        let area = cg
            .simple_attr("area")
            .and_then(Value::as_number)
            .unwrap_or(0.0);
        let mut pins = Vec::new();
        for pg in cg.groups_named("pin") {
            let pin_name = pg
                .arg_text()
                .ok_or_else(|| LibertyError::Semantic("pin without a name".into()))?
                .to_string();
            let direction = match pg.simple_attr("direction").and_then(Value::as_text) {
                Some("input") => Direction::Input,
                Some("output") => Direction::Output,
                other => {
                    return Err(LibertyError::Semantic(format!(
                        "pin {pin_name}: unsupported direction {other:?}"
                    )))
                }
            };
            let capacitance = pg
                .simple_attr("capacitance")
                .and_then(Value::as_number)
                .map(|v| v * CAP_SCALE)
                .unwrap_or(0.0);
            let function = pg
                .simple_attr("function")
                .and_then(Value::as_text)
                .map(str::to_string);
            let mut timing = Vec::new();
            for tg in pg.groups_named("timing") {
                let related_pin = tg
                    .simple_attr("related_pin")
                    .and_then(Value::as_text)
                    .ok_or_else(|| {
                        LibertyError::Semantic(format!(
                            "pin {pin_name}: timing without related_pin"
                        ))
                    })?
                    .to_string();
                let sense = match tg.simple_attr("timing_sense").and_then(Value::as_text) {
                    Some("negative_unate") | None => TimingSense::NegativeUnate,
                    Some("positive_unate") => TimingSense::PositiveUnate,
                    Some(other) => {
                        return Err(LibertyError::Semantic(format!(
                            "unsupported timing_sense {other}"
                        )))
                    }
                };
                let table = |kind: &str| -> Result<NldmTable, LibertyError> {
                    tg.groups_named(kind)
                        .next()
                        .map(table_from_ast)
                        .transpose()?
                        .ok_or_else(|| {
                            LibertyError::Semantic(format!("pin {pin_name}: missing {kind}"))
                        })
                };
                timing.push(TimingArc {
                    related_pin,
                    sense,
                    cell_rise: table("cell_rise")?,
                    rise_transition: table("rise_transition")?,
                    cell_fall: table("cell_fall")?,
                    fall_transition: table("fall_transition")?,
                });
            }
            pins.push(Pin {
                name: pin_name,
                direction,
                capacitance,
                function,
                timing,
            });
        }
        lib.push_cell(Cell {
            name: cell_name,
            area,
            pins,
        });
    }
    Ok(lib)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_table() -> NldmTable {
        NldmTable::new(
            vec![10e-12, 100e-12],
            vec![1e-15, 10e-15],
            vec![20e-12, 40e-12, 30e-12, 60e-12],
        )
        .unwrap()
    }

    fn demo_library() -> Library {
        let arc = TimingArc {
            related_pin: "A".into(),
            sense: TimingSense::NegativeUnate,
            cell_rise: demo_table(),
            rise_transition: demo_table(),
            cell_fall: demo_table(),
            fall_transition: demo_table(),
        };
        let mut lib = Library::new("demo", 1.2);
        lib.push_cell(Cell {
            name: "INVX1".into(),
            area: 1.6,
            pins: vec![
                Pin {
                    name: "A".into(),
                    direction: Direction::Input,
                    capacitance: 5.4e-15,
                    function: None,
                    timing: vec![],
                },
                Pin {
                    name: "Y".into(),
                    direction: Direction::Output,
                    capacitance: 0.0,
                    function: Some("!A".into()),
                    timing: vec![arc],
                },
            ],
        });
        lib
    }

    #[test]
    fn table_validation_and_lookup() {
        let t = demo_table();
        // Exact corners.
        assert!((t.lookup(10e-12, 1e-15).unwrap() - 20e-12).abs() < 1e-18);
        assert!((t.lookup(100e-12, 10e-15).unwrap() - 60e-12).abs() < 1e-18);
        // Center: bilinear average.
        let mid = t.lookup(55e-12, 5.5e-15).unwrap();
        assert!((mid - 37.5e-12).abs() < 1e-15);
        // Bad shapes rejected.
        assert!(NldmTable::new(vec![1.0], vec![1.0, 2.0], vec![0.0, 0.0]).is_err());
        assert!(NldmTable::new(vec![1.0, 2.0], vec![1.0, 2.0], vec![0.0]).is_err());
        assert!(NldmTable::new(vec![2.0, 1.0], vec![1.0, 2.0], vec![0.0; 4]).is_err());
    }

    #[test]
    fn library_round_trips_through_text() {
        let lib = demo_library();
        let text = lib.to_liberty();
        let parsed = parse_library(&text).unwrap();
        assert_eq!(lib, parsed);
    }

    #[test]
    fn semantic_accessors() {
        let lib = demo_library();
        let cell = lib.cell("INVX1").unwrap();
        assert_eq!(cell.inputs().count(), 1);
        let out = cell.output().unwrap();
        assert_eq!(out.function.as_deref(), Some("!A"));
        assert_eq!(out.timing.len(), 1);
        assert!(lib.cell("NAND2").is_none());
        assert!(cell.pin("A").is_some());
    }

    #[test]
    fn parse_rejects_non_library_roots() {
        assert!(matches!(
            parse_library("cell(x) { }"),
            Err(LibertyError::Semantic(_))
        ));
    }

    #[test]
    fn parse_rejects_incomplete_arcs() {
        let text = r#"
            library(x) {
                cell(c) {
                    pin(Y) {
                        direction : output;
                        timing() { related_pin : "A"; }
                    }
                }
            }
        "#;
        assert!(matches!(
            parse_library(text),
            Err(LibertyError::Semantic(_))
        ));
    }
}
