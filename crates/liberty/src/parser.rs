//! Recursive-descent parser from tokens to the generic [`Group`] AST.

use crate::ast::{Attribute, ComplexAttribute, Group, Value};
use crate::lexer::{lex, Token, TokenKind};
use crate::LibertyError;

/// Parses a complete Liberty source into its top-level group (usually
/// `library(...) { ... }`).
///
/// # Errors
///
/// [`LibertyError::Lex`]/[`LibertyError::Parse`] with 1-based positions.
pub fn parse_group(source: &str) -> Result<Group, LibertyError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let group = p.group()?;
    p.expect_eof()?;
    Ok(group)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, LibertyError> {
        let t = self.peek();
        Err(LibertyError::Parse {
            line: t.line,
            column: t.column,
            message: message.into(),
        })
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), LibertyError> {
        if std::mem::discriminant(&self.peek().kind) == std::mem::discriminant(kind) {
            self.bump();
            Ok(())
        } else {
            self.error(format!("expected {what}, found {:?}", self.peek().kind))
        }
    }

    fn expect_eof(&mut self) -> Result<(), LibertyError> {
        match self.peek().kind {
            TokenKind::Eof => Ok(()),
            _ => self.error("expected end of input"),
        }
    }

    fn value(&mut self) -> Result<Value, LibertyError> {
        match self.peek().kind.clone() {
            TokenKind::Number(v) => {
                self.bump();
                Ok(Value::Number(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Value::Str(s))
            }
            TokenKind::Ident(s) => {
                self.bump();
                Ok(Value::Ident(s))
            }
            _ => self.error("expected a value"),
        }
    }

    /// Parses `name ( args ) { body }`.
    fn group(&mut self) -> Result<Group, LibertyError> {
        let name = match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.bump();
                s
            }
            _ => return self.error("expected group name"),
        };
        self.expect(&TokenKind::LParen, "'('")?;
        let mut args = Vec::new();
        while !matches!(self.peek().kind, TokenKind::RParen) {
            args.push(self.value()?);
            if matches!(self.peek().kind, TokenKind::Comma) {
                self.bump();
            }
        }
        self.expect(&TokenKind::RParen, "')'")?;
        self.expect(&TokenKind::LBrace, "'{'")?;
        let mut group = Group {
            name,
            args,
            ..Group::default()
        };
        loop {
            match self.peek().kind.clone() {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Eof => return self.error("unexpected end of input inside group"),
                TokenKind::Ident(name) => {
                    // Lookahead decides: `:` simple attr, `(` complex attr
                    // or subgroup (distinguished by a `{` after the `)`).
                    let next = &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind;
                    match next {
                        TokenKind::Colon => {
                            self.bump(); // name
                            self.bump(); // ':'
                            let value = self.value()?;
                            // Trailing semicolon is conventional but optional.
                            if matches!(self.peek().kind, TokenKind::Semi) {
                                self.bump();
                            }
                            group.simple.push(Attribute { name, value });
                        }
                        TokenKind::LParen => {
                            // Find the matching ')' to inspect what follows.
                            let mut depth = 0usize;
                            let mut j = self.pos + 1;
                            loop {
                                match &self.tokens[j.min(self.tokens.len() - 1)].kind {
                                    TokenKind::LParen => depth += 1,
                                    TokenKind::RParen => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    TokenKind::Eof => {
                                        return self.error("unterminated '(' in group body")
                                    }
                                    _ => {}
                                }
                                j += 1;
                            }
                            let after = &self.tokens[(j + 1).min(self.tokens.len() - 1)].kind;
                            if matches!(after, TokenKind::LBrace) {
                                group.groups.push(self.group()?);
                            } else {
                                self.bump(); // name
                                self.bump(); // '('
                                let mut values = Vec::new();
                                while !matches!(self.peek().kind, TokenKind::RParen) {
                                    values.push(self.value()?);
                                    if matches!(self.peek().kind, TokenKind::Comma) {
                                        self.bump();
                                    }
                                }
                                self.bump(); // ')'
                                if matches!(self.peek().kind, TokenKind::Semi) {
                                    self.bump();
                                }
                                group.complex.push(ComplexAttribute { name, values });
                            }
                        }
                        _ => return self.error("expected ':' or '(' after identifier"),
                    }
                }
                other => return self.error(format!("unexpected token {other:?} in group body")),
            }
        }
        Ok(group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        library(demo) {
            time_unit : "1ns";
            voltage_unit : "1V";
            nom_voltage : 1.2;
            lu_table_template(delay_7x7) {
                variable_1 : input_net_transition;
                variable_2 : total_output_net_capacitance;
                index_1("0.01, 0.05, 0.1");
                index_2("0.001, 0.01, 0.1");
            }
            cell(INVX1) {
                area : 1.6;
                pin(A) {
                    direction : input;
                    capacitance : 0.0054;
                }
                pin(Y) {
                    direction : output;
                    function : "!A";
                    timing() {
                        related_pin : "A";
                        timing_sense : negative_unate;
                        cell_rise(delay_7x7) {
                            index_1("0.01, 0.05");
                            index_2("0.001, 0.01");
                            values("0.02, 0.03", "0.04, 0.05");
                        }
                    }
                }
            }
        }
    "#;

    #[test]
    fn parses_nested_structure() {
        let g = parse_group(SAMPLE).unwrap();
        assert_eq!(g.name, "library");
        assert_eq!(g.arg_text(), Some("demo"));
        assert_eq!(g.simple_attr("nom_voltage").unwrap().as_number(), Some(1.2));
        assert_eq!(g.simple_attr("time_unit").unwrap().as_text(), Some("1ns"));
        let cell = g.groups_named("cell").next().unwrap();
        assert_eq!(cell.arg_text(), Some("INVX1"));
        assert_eq!(cell.groups_named("pin").count(), 2);
        let y = cell.groups_named("pin").nth(1).unwrap();
        let timing = y.groups_named("timing").next().unwrap();
        assert_eq!(
            timing.simple_attr("timing_sense").unwrap().as_text(),
            Some("negative_unate")
        );
        let rise = timing.groups_named("cell_rise").next().unwrap();
        assert_eq!(rise.complex_attr("values").unwrap().values.len(), 2);
        // Template group parsed as a subgroup, not a complex attribute.
        assert_eq!(g.groups_named("lu_table_template").count(), 1);
    }

    #[test]
    fn empty_args_group() {
        let g = parse_group("timing() { related_pin : \"A\"; }").unwrap();
        assert_eq!(g.name, "timing");
        assert!(g.args.is_empty());
    }

    #[test]
    fn reports_positions_on_errors() {
        match parse_group("library(x) { 42 }") {
            Err(LibertyError::Parse { line: 1, .. }) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_group("library(x) {").is_err());
        assert!(parse_group("library(x) { a : ; }").is_err());
        assert!(parse_group("library(x) { } trailing(y) { }").is_err());
    }
}
