//! Serializes the [`Group`] AST back to Liberty text.

use crate::ast::{Group, Value};
use std::fmt::Write as _;

/// Pretty-prints a group tree as Liberty source.
pub fn write_group(group: &Group) -> String {
    let mut out = String::new();
    emit(group, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn value_list(values: &[Value]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn emit(group: &Group, depth: usize, out: &mut String) {
    indent(depth, out);
    let _ = writeln!(out, "{}({}) {{", group.name, value_list(&group.args));
    for attr in &group.simple {
        indent(depth + 1, out);
        let _ = writeln!(out, "{} : {};", attr.name, attr.value);
    }
    for attr in &group.complex {
        indent(depth + 1, out);
        let _ = writeln!(out, "{}({});", attr.name, value_list(&attr.values));
    }
    for sub in &group.groups {
        emit(sub, depth + 1, out);
    }
    indent(depth, out);
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_group;

    #[test]
    fn round_trip_is_stable() {
        let src = r#"
            library(rt) {
                time_unit : "1ns";
                nom_voltage : 1.2;
                cell(BUFX2) {
                    area : 3.2;
                    pin(A) { direction : input; capacitance : 0.002; }
                    pin(Y) {
                        direction : output;
                        timing() {
                            related_pin : "A";
                            cell_rise(t) { values("0.1, 0.2"); }
                        }
                    }
                }
            }
        "#;
        let g1 = parse_group(src).unwrap();
        let text1 = write_group(&g1);
        let g2 = parse_group(&text1).unwrap();
        // Parsing the writer's output reproduces the same AST...
        assert_eq!(g1, g2);
        // ...and the writer is deterministic.
        assert_eq!(text1, write_group(&g2));
    }

    #[test]
    fn output_is_indented() {
        let g = parse_group("a(x) { b : 1; c() { d : 2; } }").unwrap();
        let text = write_group(&g);
        assert!(text.contains("a(x) {"));
        assert!(text.contains("\n  b : 1;"));
        assert!(text.contains("\n  c() {"));
        assert!(text.contains("\n    d : 2;"));
    }
}
