//! Generic Liberty AST: nested groups of attributes.
//!
//! Liberty is a uniform syntax — `group_name(args) { attributes... }` — so
//! the AST layer is format-complete for the subset we support and the
//! semantic layer ([`crate::Library`]) is built on top of it.

/// A Liberty attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Numeric literal.
    Number(f64),
    /// Quoted string (quotes not included).
    Str(String),
    /// Bare identifier (including unit literals like `1ns`).
    Ident(String),
}

impl Value {
    /// The value as a number, if numeric.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as text (strings and identifiers).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Str(s) | Value::Ident(s) => Some(s),
            Value::Number(_) => None,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Number(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Ident(s) => write!(f, "{s}"),
        }
    }
}

/// A simple attribute: `name : value ;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// Attribute value.
    pub value: Value,
}

/// A complex attribute: `name(v1, v2, ...);`.
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexAttribute {
    /// Attribute name.
    pub name: String,
    /// Argument list.
    pub values: Vec<Value>,
}

/// A Liberty group: `name(args) { simple/complex attributes and subgroups }`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Group {
    /// Group type name (`library`, `cell`, `pin`, `timing`…).
    pub name: String,
    /// Group arguments (usually zero or one identifier).
    pub args: Vec<Value>,
    /// Simple attributes in source order.
    pub simple: Vec<Attribute>,
    /// Complex attributes in source order.
    pub complex: Vec<ComplexAttribute>,
    /// Nested groups in source order.
    pub groups: Vec<Group>,
}

impl Group {
    /// Creates an empty group of the given type with one identifier arg.
    pub fn named(kind: &str, arg: &str) -> Self {
        Group {
            name: kind.into(),
            args: vec![Value::Ident(arg.into())],
            ..Group::default()
        }
    }

    /// First group argument as text, if present.
    pub fn arg_text(&self) -> Option<&str> {
        self.args.first().and_then(Value::as_text)
    }

    /// Looks up a simple attribute by name.
    pub fn simple_attr(&self, name: &str) -> Option<&Value> {
        self.simple
            .iter()
            .find(|a| a.name == name)
            .map(|a| &a.value)
    }

    /// Looks up a complex attribute by name.
    pub fn complex_attr(&self, name: &str) -> Option<&ComplexAttribute> {
        self.complex.iter().find(|a| a.name == name)
    }

    /// All nested groups of a given type.
    pub fn groups_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Group> + 'a {
        self.groups.iter().filter(move |g| g.name == name)
    }

    /// Adds a simple attribute (builder style).
    pub fn set(&mut self, name: &str, value: Value) -> &mut Self {
        self.simple.push(Attribute {
            name: name.into(),
            value,
        });
        self
    }

    /// Adds a complex attribute (builder style).
    pub fn set_complex(&mut self, name: &str, values: Vec<Value>) -> &mut Self {
        self.complex.push(ComplexAttribute {
            name: name.into(),
            values,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Number(2.5).as_number(), Some(2.5));
        assert_eq!(Value::Number(2.5).as_text(), None);
        assert_eq!(Value::Str("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Ident("y".into()).as_text(), Some("y"));
        assert_eq!(Value::Str("x".into()).to_string(), "\"x\"");
    }

    #[test]
    fn group_lookup_helpers() {
        let mut g = Group::named("cell", "INVX1");
        g.set("area", Value::Number(1.0));
        g.set_complex("index_1", vec![Value::Str("1, 2".into())]);
        let mut pin = Group::named("pin", "A");
        pin.set("direction", Value::Ident("input".into()));
        g.groups.push(pin);

        assert_eq!(g.arg_text(), Some("INVX1"));
        assert_eq!(g.simple_attr("area").and_then(Value::as_number), Some(1.0));
        assert!(g.simple_attr("missing").is_none());
        assert_eq!(g.complex_attr("index_1").unwrap().values.len(), 1);
        assert_eq!(g.groups_named("pin").count(), 1);
        assert_eq!(g.groups_named("bus").count(), 0);
    }
}
