use std::fmt;

/// Error type for Liberty parsing, construction and characterization.
#[derive(Debug, Clone, PartialEq)]
pub enum LibertyError {
    /// Lexical error with 1-based line/column position.
    Lex {
        /// Line of the offending character.
        line: usize,
        /// Column of the offending character.
        column: usize,
        /// What went wrong.
        message: String,
    },
    /// Parse error with 1-based line/column position.
    Parse {
        /// Line of the offending token.
        line: usize,
        /// Column of the offending token.
        column: usize,
        /// What the parser expected/found.
        message: String,
    },
    /// The AST was syntactically valid Liberty but semantically unusable.
    Semantic(String),
    /// A table lookup or construction failed.
    Table(nsta_numeric::NumericError),
    /// Characterization simulation failed.
    Spice(nsta_spice::SpiceError),
    /// Waveform measurement failed during characterization.
    Waveform(nsta_waveform::WaveformError),
}

impl fmt::Display for LibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibertyError::Lex {
                line,
                column,
                message,
            } => {
                write!(f, "lex error at {line}:{column}: {message}")
            }
            LibertyError::Parse {
                line,
                column,
                message,
            } => {
                write!(f, "parse error at {line}:{column}: {message}")
            }
            LibertyError::Semantic(m) => write!(f, "semantic error: {m}"),
            LibertyError::Table(e) => write!(f, "table error: {e}"),
            LibertyError::Spice(e) => write!(f, "characterization failure: {e}"),
            LibertyError::Waveform(e) => write!(f, "measurement failure: {e}"),
        }
    }
}

impl std::error::Error for LibertyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LibertyError::Table(e) => Some(e),
            LibertyError::Spice(e) => Some(e),
            LibertyError::Waveform(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nsta_numeric::NumericError> for LibertyError {
    fn from(e: nsta_numeric::NumericError) -> Self {
        LibertyError::Table(e)
    }
}

impl From<nsta_spice::SpiceError> for LibertyError {
    fn from(e: nsta_spice::SpiceError) -> Self {
        LibertyError::Spice(e)
    }
}

impl From<nsta_waveform::WaveformError> for LibertyError {
    fn from(e: nsta_waveform::WaveformError) -> Self {
        LibertyError::Waveform(e)
    }
}
