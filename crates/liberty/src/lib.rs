//! Liberty-subset cell-library system.
//!
//! The paper stresses that SGDP "is compatible with the current level of
//! gate characterization in conventional ASIC cell libraries". This crate
//! provides that characterization level, built from scratch:
//!
//! * a **lexer/parser/writer** for the Liberty format subset used by
//!   delay-calculation flows ([`parse_library`], [`Library::to_liberty`]),
//! * a **semantic model** — [`Library`], [`Cell`], [`Pin`], [`TimingArc`],
//!   [`NldmTable`] — with bilinear NLDM interpolation,
//! * a **characterization flow** ([`characterize`]) that fills NLDM tables
//!   by running the `nsta-spice` transistor-level simulator over a
//!   slew × load grid, exactly how commercial libraries are produced.
//!
//! ```no_run
//! use nsta_liberty::{characterize, parse_library};
//! use nsta_spice::Process;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let opts = characterize::Options::fast_test();
//! let lib = characterize::inverter_family(
//!     &Process::c013(),
//!     &[("INVX1", 1.0)],
//!     &opts,
//! )?;
//! let text = lib.to_liberty();
//! let parsed = parse_library(&text)?;
//! assert_eq!(parsed.cells().len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

mod ast;
pub mod characterize;
mod error;
mod lexer;
mod library;
mod parser;
mod writer;

pub use ast::{Attribute, ComplexAttribute, Group, Value};
pub use error::LibertyError;
pub use library::{
    parse_library, Cell, Direction, Library, NldmTable, Pin, TimingArc, TimingSense,
};
pub use parser::parse_group;
