//! Tokenizer for the Liberty subset.

use crate::LibertyError;

/// A lexical token with its source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub column: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    /// Bare identifier (may contain letters, digits, `_`, `.`, `!`, `*`).
    Ident(String),
    /// Double-quoted string (quotes stripped, no escape processing —
    /// Liberty strings carry expressions and number lists verbatim).
    Str(String),
    /// Numeric literal.
    Number(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Semi,
    Comma,
    Eof,
}

pub(crate) fn lex(input: &str) -> Result<Vec<Token>, LibertyError> {
    let mut tokens = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let n = bytes.len();
    while i < n {
        let c = bytes[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut usize, col: &mut usize| {
            if bytes[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance(&mut i, &mut line, &mut col),
            '\\' => {
                // Line continuation: skip the backslash (and the newline on
                // the next loop iteration).
                advance(&mut i, &mut line, &mut col);
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                advance(&mut i, &mut line, &mut col);
                advance(&mut i, &mut line, &mut col);
                let mut closed = false;
                while i < n {
                    if bytes[i] == '*' && i + 1 < n && bytes[i + 1] == '/' {
                        advance(&mut i, &mut line, &mut col);
                        advance(&mut i, &mut line, &mut col);
                        closed = true;
                        break;
                    }
                    advance(&mut i, &mut line, &mut col);
                }
                if !closed {
                    return Err(LibertyError::Lex {
                        line: tline,
                        column: tcol,
                        message: "unterminated block comment".into(),
                    });
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                while i < n && bytes[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '"' => {
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                let mut closed = false;
                while i < n {
                    if bytes[i] == '"' {
                        advance(&mut i, &mut line, &mut col);
                        closed = true;
                        break;
                    }
                    // Liberty wraps long strings with backslash-newline.
                    if bytes[i] == '\\' && i + 1 < n && bytes[i + 1] == '\n' {
                        advance(&mut i, &mut line, &mut col);
                        advance(&mut i, &mut line, &mut col);
                        continue;
                    }
                    s.push(bytes[i]);
                    advance(&mut i, &mut line, &mut col);
                }
                if !closed {
                    return Err(LibertyError::Lex {
                        line: tline,
                        column: tcol,
                        message: "unterminated string".into(),
                    });
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    line: tline,
                    column: tcol,
                });
            }
            '{' | '}' | '(' | ')' | ':' | ';' | ',' => {
                let kind = match c {
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    ':' => TokenKind::Colon,
                    ';' => TokenKind::Semi,
                    _ => TokenKind::Comma,
                };
                advance(&mut i, &mut line, &mut col);
                tokens.push(Token {
                    kind,
                    line: tline,
                    column: tcol,
                });
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
                let start = i;
                while i < n
                    && (bytes[i].is_ascii_alphanumeric()
                        || matches!(bytes[i], '.' | '+' | '-' | '_'))
                {
                    // Stop '+'/'-' unless they follow an exponent marker.
                    if matches!(bytes[i], '+' | '-') && i > start {
                        let prev = bytes[i - 1];
                        if prev != 'e' && prev != 'E' {
                            break;
                        }
                    }
                    advance(&mut i, &mut line, &mut col);
                }
                let text: String = bytes[start..i].iter().collect();
                match text.parse::<f64>() {
                    Ok(v) => tokens.push(Token {
                        kind: TokenKind::Number(v),
                        line: tline,
                        column: tcol,
                    }),
                    Err(_) => {
                        // Things like `1ns` are identifiers in our subset.
                        tokens.push(Token {
                            kind: TokenKind::Ident(text),
                            line: tline,
                            column: tcol,
                        })
                    }
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '!' => {
                let start = i;
                while i < n
                    && (bytes[i].is_ascii_alphanumeric()
                        || matches!(bytes[i], '_' | '.' | '!' | '*' | '[' | ']'))
                {
                    advance(&mut i, &mut line, &mut col);
                }
                let text: String = bytes[start..i].iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line: tline,
                    column: tcol,
                });
            }
            other => {
                return Err(LibertyError::Lex {
                    line: tline,
                    column: tcol,
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        column: col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_idents() {
        let k = kinds("library(foo) { }");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("library".into()),
                TokenKind::LParen,
                TokenKind::Ident("foo".into()),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn numbers_and_units() {
        let k = kinds("capacitance : 0.0021 ; time : -1.5e-3 ; unit : 1ns ;");
        assert!(k.contains(&TokenKind::Number(0.0021)));
        assert!(k.contains(&TokenKind::Number(-1.5e-3)));
        assert!(k.contains(&TokenKind::Ident("1ns".into())));
    }

    #[test]
    fn strings_and_comments() {
        let k = kinds("/* block */ values(\"1, 2\"); // tail\nname : \"a b\";");
        assert!(k.contains(&TokenKind::Str("1, 2".into())));
        assert!(k.contains(&TokenKind::Str("a b".into())));
    }

    #[test]
    fn positions_are_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn errors_have_positions() {
        match lex("ok $bad") {
            Err(LibertyError::Lex {
                line: 1, column: 4, ..
            }) => {}
            other => panic!("expected lex error at 1:4, got {other:?}"),
        }
        assert!(lex("\"unterminated").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
