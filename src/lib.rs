//! # noisy-sta
//!
//! Umbrella crate for the `noisy-sta` workspace: a reproduction of
//! *"Modeling and Propagation of Noisy Waveforms in Static Timing
//! Analysis"* (Nazarian, Pedram, Tuncer, Lin, Ajami — DATE 2005).
//!
//! The workspace implements, from scratch:
//!
//! * a waveform algebra ([`waveform`]),
//! * a linear RC circuit engine with coupled lines ([`circuit`]),
//! * a nonlinear transistor-level transient simulator ([`spice`]),
//! * a Liberty-subset cell-library system with NLDM characterization
//!   ([`liberty`]),
//! * the paper's contribution — the **SGDP** equivalent-waveform technique —
//!   together with the P1/P2/LSF3/E4/WLS5 baselines ([`core`]),
//! * a crosstalk-aware static timing analyzer with timing-window aggressor
//!   filtering ([`sta`]),
//! * a SPEF parasitic-extraction subsystem that derives the coupling
//!   structure from extracted RC networks ([`parasitics`]),
//! * an SDC-subset constraints system binding clocks, per-pin min/max
//!   input delays, output requirements and false paths onto the analysis
//!   ([`constraints`]).
//!
//! Each sub-crate is usable on its own; this crate merely re-exports them
//! under stable names so applications can depend on a single entry point.
//!
//! ## Quickstart
//!
//! ```
//! use noisy_sta::waveform::{SaturatedRamp, Thresholds};
//! use noisy_sta::core::gate::AnalyticInverterGate;
//! use noisy_sta::core::{MethodKind, PropagationContext};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let th = Thresholds::cmos(1.2);
//! let gate = AnalyticInverterGate::fast(th);
//! // A clean 150 ps (10-90) rising ramp arriving at 1 ns...
//! let clean = SaturatedRamp::with_slew(1.0e-9, 150e-12, th, true)?;
//! // ...distorted by a deep crosstalk glitch near the transition.
//! let noisy = clean
//!     .to_waveform(0.0, 4.0e-9, 2.0e-12)?
//!     .with_triangular_pulse(1.15e-9, 200e-12, -0.8)?;
//! let ctx = PropagationContext::with_gate(clean, noisy, &gate, th)?;
//! let gamma = MethodKind::Sgdp.equivalent(&ctx)?;
//! println!("Γeff arrival = {:.1} ps", gamma.arrival_mid() * 1e12);
//! assert!(gamma.arrival_mid() > 1.0e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use nsta_circuit as circuit;
pub use nsta_constraints as constraints;
pub use nsta_liberty as liberty;
pub use nsta_numeric as numeric;
pub use nsta_obs as obs;
pub use nsta_parasitics as parasitics;
pub use nsta_session as session;
pub use nsta_spice as spice;
pub use nsta_sta as sta;
pub use nsta_waveform as waveform;
pub use sgdp as core;
