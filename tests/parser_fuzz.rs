//! Parser robustness smoke: deterministic byte/token mutations of golden
//! SPEF, Verilog and SDC inputs. Every mutated input must come back as
//! `Ok` or a structured `Err` — a panic anywhere in a parser is a bug.
//! The mutation stream is driven by the in-tree xorshift PRNG, so a
//! failure reproduces from the printed case number alone.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use noisy_sta::obs::XorShift64;
use std::panic::{catch_unwind, AssertUnwindSafe};

const CASES: usize = 1_200;

const GOLDEN_SPEF: &str = "*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*NAME_MAP\n*1 v\n*2 g\n*3 h\n\
     *D_NET *1 100.0\n\
     *CONN\n*I u2:A I *L 5.0\n*I u9:B I *L 7.0\n\
     *CAP\n1 *1:1 10.0\n2 *1:2 10.0\n3 *1:1 *2:1 30.0\n4 *1:2 *2:2 20.0\n\
     5 *1:2 *3:1 15.0\n\
     *RES\n1 *1 *1:1 8.0\n2 *1:1 *1:2 9.0\n*END\n\
     *D_NET *2 20.0\n*CAP\n1 *2:1 20.0\n*END\n";

const GOLDEN_VERILOG: &str = "module bus (a0, b0, y0, z0);\n\
     input a0, b0; output y0, z0;\n\
     wire v0, g0;\n\
     INVX1 u1 (.A(a0), .Y(v0));\n\
     INVX4 u2 (.A(v0), .Y(y0));\n\
     INVX1 u3 (.A(b0), .Y(g0));\n\
     INVX4 u4 (.A(g0), .Y(z0));\n\
     endmodule\n";

const GOLDEN_SDC: &str = include_str!("../crates/bench/data/bus.sdc");

/// One mutated variant of `golden`: 1–4 random edits drawn from byte
/// flips, span deletions, span duplications and token swaps.
fn mutate(rng: &mut XorShift64, golden: &str) -> String {
    let mut bytes = golden.as_bytes().to_vec();
    let edits = 1 + rng.next_below(4);
    for _ in 0..edits {
        if bytes.is_empty() {
            bytes.push(b'*');
        }
        let len = bytes.len() as u64;
        match rng.next_below(4) {
            0 => {
                // Byte flip: any value, including non-UTF8 garbage (the
                // lossy re-decode below maps it to U+FFFD).
                let i = rng.next_below(len) as usize;
                bytes[i] = rng.next_below(256) as u8;
            }
            1 => {
                // Span deletion.
                let i = rng.next_below(len) as usize;
                let end = (i + 1 + rng.next_below(8) as usize).min(bytes.len());
                bytes.drain(i..end);
            }
            2 => {
                // Span duplication at a random insertion point.
                let i = rng.next_below(len) as usize;
                let end = (i + 1 + rng.next_below(8) as usize).min(bytes.len());
                let span: Vec<u8> = bytes[i..end].to_vec();
                let at = rng.next_below(bytes.len() as u64 + 1) as usize;
                bytes.splice(at..at, span);
            }
            _ => {
                // Token swap: exchange two whitespace-delimited tokens.
                let text = String::from_utf8_lossy(&bytes).into_owned();
                let mut tokens: Vec<&str> = text.split_whitespace().collect();
                if tokens.len() >= 2 {
                    let a = rng.next_below(tokens.len() as u64) as usize;
                    let b = rng.next_below(tokens.len() as u64) as usize;
                    tokens.swap(a, b);
                    bytes = tokens.join(" ").into_bytes();
                }
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Feeds `CASES` mutants of `golden` through `parse`, asserting no panic
/// escapes and that the mutations actually exercise the error paths.
fn fuzz(name: &str, golden: &str, seed: u64, parse: impl Fn(&str) -> bool) {
    let mut rng = XorShift64::new(seed);
    let mut errors = 0usize;
    for case in 0..CASES {
        let input = mutate(&mut rng, golden);
        match catch_unwind(AssertUnwindSafe(|| parse(&input))) {
            Ok(parsed_ok) => {
                if !parsed_ok {
                    errors += 1;
                }
            }
            Err(_) => {
                panic!("{name} parser panicked on mutation case {case} (seed {seed}):\n{input}")
            }
        }
    }
    // A mutation campaign that never reaches an error path is testing
    // nothing; the goldens are small enough that most edits break them.
    assert!(
        errors > CASES / 10,
        "{name}: only {errors}/{CASES} mutants errored — mutations too weak"
    );
}

#[test]
fn mutated_spef_never_panics() {
    fuzz("SPEF", GOLDEN_SPEF, 0xDA7E_0001, |s| {
        noisy_sta::parasitics::parse_spef(s).is_ok()
    });
}

#[test]
fn mutated_verilog_never_panics() {
    fuzz("Verilog", GOLDEN_VERILOG, 0xDA7E_0002, |s| {
        noisy_sta::sta::verilog::parse_design(s).is_ok()
    });
}

#[test]
fn mutated_sdc_never_panics() {
    fuzz("SDC", GOLDEN_SDC, 0xDA7E_0003, |s| {
        noisy_sta::constraints::parse_sdc(s).is_ok()
    });
}
