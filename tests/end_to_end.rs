//! Cross-crate integration tests: the full pipeline from transistor-level
//! simulation through waveform reduction to STA, exercised end to end.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use noisy_sta::core::eval::evaluate_case;
use noisy_sta::core::gate::SpiceReceiverGate;
use noisy_sta::core::{MethodKind, PropagationContext};
use noisy_sta::spice::fig1::{self, Fig1Config};
use noisy_sta::waveform::Thresholds;

/// Faster settings for CI: coarser step, shorter tail.
fn test_cfg() -> Fig1Config {
    Fig1Config {
        dt: 2e-12,
        t_stop: 3.5e-9,
        ..Fig1Config::config_i()
    }
}

#[test]
fn config_i_accuracy_pipeline() {
    let cfg = test_cfg();
    let th = Thresholds::cmos(cfg.proc.vdd);
    let gate = SpiceReceiverGate::new(cfg);
    let quiet = fig1::run_noiseless(&cfg).expect("noiseless simulation");

    // Three representative alignments: before, at, and after the victim
    // transition.
    let mut sgdp_errors = Vec::new();
    for skew in [-0.3e-9, 0.0, 0.3e-9] {
        let noisy = fig1::run_case(&cfg, &[skew]).expect("noisy simulation");
        if noisy.out_u.crossings(th.mid()).len() > 1 {
            continue; // functional-noise case
        }
        let ctx = PropagationContext::new(
            quiet.in_u.clone(),
            noisy.in_u.clone(),
            Some(quiet.out_u.clone()),
            th,
        )
        .expect("context");
        let report =
            evaluate_case(&ctx, &gate, &noisy.out_u, &MethodKind::all()).expect("evaluation");
        // The golden delay is physically sensible.
        assert!(report.golden_delay.value() > 20e-12);
        assert!(report.golden_delay.value() < 500e-12);
        // SGDP succeeds on every delay-noise case.
        let err = report.error_of(MethodKind::Sgdp).expect("sgdp succeeds");
        assert!(
            err < 150e-12,
            "sgdp error {err:e} out of band at skew {skew:e}"
        );
        sgdp_errors.push(err);
    }
    assert!(!sgdp_errors.is_empty());
}

#[test]
fn sgdp_beats_the_field_on_average_at_tight_alignment() {
    // At alignments that distort the transition itself, the sensitivity
    // methods must beat the naive fits (LSF3) clearly.
    let cfg = test_cfg();
    let th = Thresholds::cmos(cfg.proc.vdd);
    let gate = SpiceReceiverGate::new(cfg);
    let quiet = fig1::run_noiseless(&cfg).expect("noiseless");
    let mut sum = std::collections::HashMap::new();
    let mut count = 0usize;
    for skew in [-0.1e-9, 0.0, 0.1e-9] {
        let noisy = fig1::run_case(&cfg, &[skew]).expect("case");
        let ctx = PropagationContext::new(
            quiet.in_u.clone(),
            noisy.in_u.clone(),
            Some(quiet.out_u.clone()),
            th,
        )
        .expect("context");
        let report =
            evaluate_case(&ctx, &gate, &noisy.out_u, &MethodKind::all()).expect("evaluation");
        for m in MethodKind::all() {
            if let Some(e) = report.error_of(m) {
                *sum.entry(m.name()).or_insert(0.0) += e;
            }
        }
        count += 1;
    }
    assert!(count > 0);
    let avg = |name: &str| sum.get(name).copied().unwrap_or(f64::INFINITY) / count as f64;
    assert!(
        avg("SGDP") < avg("LSF3"),
        "sgdp {:.1}ps must beat lsf3 {:.1}ps",
        avg("SGDP") * 1e12,
        avg("LSF3") * 1e12
    );
}

#[test]
fn characterize_write_parse_sta_pipeline() {
    use noisy_sta::liberty::characterize::{inverter_family, Options};
    use noisy_sta::liberty::parse_library;
    use noisy_sta::spice::Process;
    use noisy_sta::sta::{verilog, Constraints, Sta};

    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )
    .expect("characterization");
    // Serialize → parse → serialize: the text form must be idempotent
    // (struct equality can differ by 1 ULP from unit scaling).
    let text = lib.to_liberty();
    let parsed = parse_library(&text).expect("parse back");
    assert_eq!(parsed.to_liberty(), text);
    assert_eq!(parsed.cells().len(), lib.cells().len());

    let design = verilog::parse_design(
        "module m (a, y); input a; output y; wire w;\
         INVX1 u1 (.A(a), .Y(w)); INVX4 u2 (.A(w), .Y(y)); endmodule",
    )
    .expect("netlist");
    let sta = Sta::new(design, parsed).expect("sta");
    let report = sta.analyze(Constraints::default()).expect("analysis");
    // Two inverter stages: tens of picoseconds, positive, bounded.
    assert!(report.worst_arrival() > 10e-12);
    assert!(report.worst_arrival() < 1e-9);
    assert_eq!(report.critical_path().first().expect("path").name, "a");
    assert_eq!(report.critical_path().last().expect("path").name, "y");
}

#[test]
fn sta_crosstalk_uses_equivalent_waveforms() {
    use noisy_sta::circuit::RcLineSpec;
    use noisy_sta::liberty::characterize::{inverter_family, Options};
    use noisy_sta::spice::Process;
    use noisy_sta::sta::{verilog, Constraints, CouplingSpec, Sta};

    let lib = inverter_family(
        &Process::c013(),
        &[("INVX1", 1.0), ("INVX4", 4.0)],
        &Options::fast_test(),
    )
    .expect("characterization");
    let design = verilog::parse_design(
        "module m (a, b, y, z); input a, b; output y, z; wire v, g;\
         INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\
         INVX1 u3 (.A(b), .Y(g)); INVX4 u4 (.A(g), .Y(z)); endmodule",
    )
    .expect("netlist");
    let sta = Sta::new(design, lib).expect("sta");
    let c = Constraints::default();
    let nominal = sta.analyze(c).expect("nominal");

    let spec = CouplingSpec::new(
        sta.design().find_net("v").expect("victim"),
        vec![sta.design().find_net("g").expect("aggressor")],
        100e-15,
        RcLineSpec::per_micron(1000.0).expect("line"),
    );
    let (with_si, adjustments) = sta
        .analyze_with_crosstalk(c, &[spec], MethodKind::Sgdp)
        .expect("si analysis");
    assert_eq!(adjustments.len(), 2);
    // Crosstalk cannot make the worst slack better.
    assert!(with_si.worst_slack() <= nominal.worst_slack() + 1e-15);
    // The victim's fanout arrives later than over an ideal wire.
    let y = sta.design().find_net("y").expect("net y");
    let nom = nominal
        .net(y)
        .expect("timing")
        .rise
        .as_ref()
        .expect("rise")
        .arrival;
    let si = with_si
        .net(y)
        .expect("timing")
        .rise
        .as_ref()
        .expect("rise")
        .arrival;
    assert!(si > nom);
}
