//! ECO-session robustness fuzz: randomized edit/rollback sequences from
//! the in-tree PRNG with interleaved injected faults. Every committed
//! state must match a fresh batch analysis within 1e-6 ps (the shadow
//! audit's default tolerance), every rolled-back state must be
//! bit-identical to the pre-edit snapshot, and journal replay must
//! reproduce the committed state bit-for-bit — at 1 and 4 analysis
//! threads.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use noisy_sta::liberty::characterize::{inverter_family, Options};
use noisy_sta::liberty::Library;
use noisy_sta::obs::fault::{self, XorShift64};
use noisy_sta::parasitics::BindOptions;
use noisy_sta::session::{Edit, EditOutcome, RollbackCause, SessionOptions, TimingSession};
use noisy_sta::spice::Process;
use noisy_sta::sta::{
    verilog, BoundaryConditions, Constraints, Deadline, FakeClock, SiOptions, Sta,
};
use nsta_bench::busgen;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Coupled bus groups in the fuzz workload (busgen: 3 cones per group,
/// with group g's far aggressor behind a 2g+1 inverter chain).
const GROUPS: usize = 4;
/// RC segments per extracted wire.
const SEGMENTS: usize = 3;
/// Edits per fuzz sequence.
const EDITS_PER_SEQUENCE: usize = 8;

/// The injection plan is process-global, so every test in this file must
/// hold this lock — including the fault-free ones, which would otherwise
/// race a neighbour's armed plan. Poison recovery keeps one failing test
/// from cascading into spurious lock panics.
fn fault_guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn lib() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(|| {
        inverter_family(
            &Process::c013(),
            &[("INVX1", 1.0), ("INVX4", 4.0)],
            &Options::fast_test(),
        )
        .expect("characterization")
    })
}

fn open_session(threads: usize) -> TimingSession {
    let design = verilog::parse_design(&busgen::netlist(GROUPS)).expect("netlist");
    let sta = Sta::new(design, lib().clone()).expect("sta");
    let options = SessionOptions {
        si: SiOptions {
            threads,
            ..SiOptions::default()
        },
        // Audits run explicitly after each commit (below), never inside
        // `apply`, so an armed fault plan can only fire in the edit's
        // own re-solve — the batch reference stays fault-free.
        audit_every_n: None,
        ..SessionOptions::default()
    };
    TimingSession::open(
        sta,
        busgen::spef(GROUPS, SEGMENTS),
        BindOptions::default(),
        BoundaryConditions::uniform(&Constraints::default()),
        options,
    )
    .expect("session open")
}

/// The same deterministic edit mix spefbus --eco drives: output-load
/// swaps, driver-resistance swaps, and re-extractions of the victim
/// wire with scaled caps (the mesh-changing ECO).
fn gen_edit(rng: &mut XorShift64, session: &TimingSession, i: usize) -> Edit {
    let g = rng.next_below(GROUPS as u64);
    match i % 3 {
        0 => Edit::SetLoad {
            port: format!("y{g}"),
            farads: (5 + rng.next_below(50)) as f64 * 1e-15,
        },
        1 => Edit::SetDriveResistance {
            net: format!("v{g}"),
            ohms: (120 + rng.next_below(240)) as f64,
        },
        _ => {
            let mut dnet = session
                .spef()
                .net(&format!("v{g}"))
                .expect("victim D_NET exists")
                .clone();
            let scale = 0.85 + 0.3 * (rng.next_below(1000) as f64 / 1000.0);
            for cap in &mut dnet.caps {
                cap.value *= scale;
            }
            Edit::ReannotateNet { dnet }
        }
    }
}

/// How one edit in a fuzz sequence is perturbed.
#[derive(Clone, Copy, PartialEq)]
enum Perturb {
    /// No fault plan, no deadline: the edit must commit.
    Clean,
    /// An already-expired fake deadline: the edit must roll back with
    /// [`RollbackCause::DeadlineExpired`] and the session must stay
    /// serviceable.
    ExpiredDeadline,
    /// A worker-panic plan: the cone pool retries the panicked task, so
    /// the edit still commits with bit-identical numerics (or the plan
    /// never reaches a firing opportunity — also a clean commit).
    WorkerPanic,
    /// A numeric-failure plan (poisoned solve / lost pivot). Three legal
    /// outcomes: the plan doesn't fire (clean commit); the fallback
    /// chain recovers on dense LU (the commit carries degraded numerics
    /// a fresh batch won't reproduce); or the chain exhausts and the
    /// edit rolls back.
    Numeric(&'static str),
}

/// The per-edit perturbation schedule: deterministic rollbacks and
/// bit-identical recoveries early, the possibly-degrading numeric fault
/// only on the final edit so every earlier committed state can be
/// audited against a fresh batch at full tolerance. Worker-panic
/// recovery is a *pool* feature (the coordinator catches the panic and
/// retries the cone inline), so it is only scheduled on threaded runs.
fn perturb_for(i: usize, seed: u64, threads: usize) -> Perturb {
    match i {
        2 | 5 => Perturb::ExpiredDeadline,
        3 if threads > 1 => Perturb::WorkerPanic,
        _ if i + 1 == EDITS_PER_SEQUENCE => Perturb::Numeric(if seed.is_multiple_of(2) {
            "nan-solve:2"
        } else {
            "pivot-loss:2"
        }),
        _ => Perturb::Clean,
    }
}

/// Drives one PRNG edit sequence through a session with interleaved
/// injected faults and forced deadlines. A commit must advance the
/// epoch/journal and (until a degraded recovery lands) match a fresh
/// batch analysis within the audit tolerance; a rollback may only happen
/// under a perturbation and must leave the session bit-identical to the
/// pre-edit snapshot. Returns the session plus whether a numeric fault
/// fired and recovered (the caller must then compare replay by tolerance
/// instead of bit-identity).
fn fuzz_sequence(seed: u64, threads: usize, inject: bool) -> (TimingSession, bool) {
    fault::disarm();
    let mut session = open_session(threads);
    let mut rng = XorShift64::new(seed);
    let mut rollbacks = 0u32;
    let mut degraded = false;
    for i in 0..EDITS_PER_SEQUENCE {
        let edit = gen_edit(&mut rng, &session, i);
        let before = session.report().clone();
        let epoch_before = session.epoch();
        let journal_before = session.journal().len();
        let perturb = if inject {
            perturb_for(i, seed, threads)
        } else {
            Perturb::Clean
        };
        match perturb {
            Perturb::Clean => {}
            Perturb::ExpiredDeadline => {
                session.set_edit_deadline(Some(Deadline::on_fake(FakeClock::new(0), 0)));
            }
            Perturb::WorkerPanic => fault::arm("worker-panic:2", seed ^ i as u64).expect("arm"),
            Perturb::Numeric(site) => fault::arm(site, seed ^ i as u64).expect("arm"),
        }
        let outcome = session.apply(edit);
        let fired = fault::enabled() && fault::total_fired() > 0;
        fault::disarm();
        session.set_edit_deadline(None);
        match outcome {
            EditOutcome::Committed(info) => {
                assert!(
                    perturb != Perturb::ExpiredDeadline,
                    "edit {i}: committed under an expired deadline"
                );
                assert_eq!(session.epoch(), epoch_before + 1, "edit {i}: epoch");
                assert_eq!(
                    session.journal().len(),
                    journal_before + 1,
                    "edit {i}: journal"
                );
                assert!(
                    info.dirty_nets > 0,
                    "edit {i}: committed with no dirty nets"
                );
                degraded |= matches!(perturb, Perturb::Numeric(_)) && fired;
                // A degraded recovery legitimately diverges from a fresh
                // batch (dense-fallback numerics); the shadow audit's job
                // is to flag exactly that, so it only gates clean states.
                if !degraded {
                    let audit = session
                        .audit_now()
                        .unwrap_or_else(|f| panic!("edit {i} (seed {seed:#x}): {f}"));
                    assert!(
                        audit.max_divergence <= 1e-18,
                        "edit {i}: committed state diverged {:.3e} s from a fresh batch",
                        audit.max_divergence
                    );
                    assert!(
                        audit.untouched_identical,
                        "edit {i}: never-dirtied nets drifted"
                    );
                }
            }
            EditOutcome::RolledBack { cause } => {
                match perturb {
                    Perturb::ExpiredDeadline => assert_eq!(
                        cause,
                        RollbackCause::DeadlineExpired,
                        "edit {i}: wrong rollback cause"
                    ),
                    Perturb::Numeric(_) => {
                        assert!(fired, "edit {i}: rolled back but no fault fired")
                    }
                    _ => panic!("edit {i} (seed {seed:#x}) rolled back unperturbed: {cause:?}"),
                }
                assert_eq!(
                    session.report(),
                    &before,
                    "edit {i}: rolled-back state is not bit-identical to the snapshot"
                );
                assert_eq!(session.epoch(), epoch_before, "edit {i}: rollback epoch");
                assert_eq!(
                    session.journal().len(),
                    journal_before,
                    "edit {i}: rollback journal"
                );
                rollbacks += 1;
            }
            other => panic!("edit {i} (seed {seed:#x}): unexpected outcome {other:?}"),
        }
    }
    if inject {
        // The two expired-deadline edits always roll back.
        assert!(rollbacks >= 2, "forced-deadline rollbacks missing");
    }
    assert_eq!(session.rollbacks(), u64::from(rollbacks));
    assert!(session.quarantined().is_none(), "session quarantined");
    (session, degraded)
}

/// Replay rebuilds the committed state from the seed inputs plus the
/// journal. Fault-free it is bit-identical; after a degraded recovery
/// the retained state carries dense-fallback numerics the clean replay
/// cannot reproduce exactly, so it only has to land within the
/// dense-parity envelope (~0.1 fs).
fn assert_replay_matches(session: &TimingSession, seed: u64, degraded: bool) {
    let replayed = session.replay().expect("replay");
    assert_eq!(replayed.epoch(), session.epoch());
    assert_eq!(replayed.journal(), session.journal());
    if !degraded {
        assert_eq!(
            replayed.report(),
            session.report(),
            "replay is not bit-identical (seed {seed:#x})"
        );
        return;
    }
    for (a, b) in session.report().nets().iter().zip(replayed.report().nets()) {
        assert_eq!(a.name, b.name);
        for (pa, pb) in [(&a.rise, &b.rise), (&a.fall, &b.fall)] {
            match (pa, pb) {
                (None, None) => {}
                (Some(pa), Some(pb)) => {
                    for (x, y) in [
                        (pa.arrival, pb.arrival),
                        (pa.slew, pb.slew),
                        (pa.required, pb.required),
                        (pa.slack, pb.slack),
                    ] {
                        assert!(
                            (x - y).abs() <= 1e-13 || (x == y),
                            "replay diverged {:.3e} s on {} (seed {seed:#x})",
                            (x - y).abs(),
                            a.name,
                        );
                    }
                }
                _ => panic!("replay reachability differs on {} (seed {seed:#x})", a.name),
            }
        }
    }
}

#[test]
fn randomized_edit_rollback_fuzz_single_thread() {
    let _guard = fault_guard();
    for seed in [0x5EED_0001u64, 0x5EED_0002, 0x5EED_0003] {
        let (session, degraded) = fuzz_sequence(seed, 1, true);
        assert_replay_matches(&session, seed, degraded);
    }
}

#[test]
fn randomized_edit_rollback_fuzz_four_threads() {
    let _guard = fault_guard();
    let seed = 0x5EED_0004u64;
    let (session, degraded) = fuzz_sequence(seed, 4, true);
    assert_replay_matches(&session, seed, degraded);
}

/// With no faults armed the edit stream is pure and deterministic, so
/// the committed state must be bit-identical across thread schedules.
/// (Fault-armed runs can't be compared this way: firing opportunity
/// indices depend on worker interleaving.)
#[test]
fn thread_schedule_does_not_change_committed_state() {
    let _guard = fault_guard();
    fault::disarm();
    let seed = 0x5EED_0005u64;
    let (one, _) = fuzz_sequence(seed, 1, false);
    let (four, _) = fuzz_sequence(seed, 4, false);
    assert_eq!(
        one.report(),
        four.report(),
        "thread schedule changed the committed state"
    );
    assert_eq!(one.journal(), four.journal());
    assert_eq!(one.epoch(), four.epoch());
}

/// Invalid edits are refused before touching any state: unknown target,
/// non-positive resistance, non-finite load.
#[test]
fn invalid_edits_are_rejected_without_state_change() {
    let _guard = fault_guard();
    fault::disarm();
    let mut session = open_session(1);
    let before = session.report().clone();
    let epoch = session.epoch();
    for edit in [
        Edit::SetLoad {
            port: "no_such_port".into(),
            farads: 10e-15,
        },
        Edit::SetDriveResistance {
            net: "v0".into(),
            ohms: -5.0,
        },
        Edit::SetLoad {
            port: "y0".into(),
            farads: f64::NAN,
        },
    ] {
        match session.apply(edit) {
            EditOutcome::Rejected { .. } => {}
            other => panic!("expected rejection, got {other:?}"),
        }
    }
    assert_eq!(session.report(), &before);
    assert_eq!(session.epoch(), epoch);
    assert!(session.journal().is_empty());
    assert_eq!(session.rejected(), 3);
}
