//! Property-style tests over the core data structures and the technique
//! invariants, spanning crates.
//!
//! The workspace builds offline, so instead of a property-testing framework
//! these run each invariant over a deterministic seeded sweep of inputs.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use noisy_sta::core::gate::{AnalyticInverterGate, GateModel};
use noisy_sta::core::{MethodKind, PropagationContext};
use noisy_sta::numeric::{DenseMatrix, LuFactors};
use noisy_sta::waveform::{SaturatedRamp, Thresholds, Waveform};

/// Deterministic xorshift64 sampler shared by the sweeps below.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next_unit(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_unit()
    }

    fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_unit() * (hi - lo) as f64) as usize
    }

    fn bool(&mut self) -> bool {
        self.next_unit() < 0.5
    }
}

/// LU round trip: for diagonally dominant matrices, `A·x == b`.
#[test]
fn lu_solves_diagonally_dominant_systems() {
    let mut rng = Rng::new(0x10);
    for _ in 0..64 {
        let n = rng.usize_range(2, 12);
        let mut a = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, rng.range(-0.5, 0.5));
            }
            a.add(r, r, n as f64 + 1.0);
        }
        let b: Vec<f64> = (0..n).map(|_| rng.range(-0.5, 0.5)).collect();
        let lu = LuFactors::factor(&a).expect("dominant matrices factor");
        let x = lu.solve(&b).expect("solve");
        let back = a.mul_vec(&x).expect("shape");
        for (want, got) in b.iter().zip(back) {
            assert!((want - got).abs() < 1e-8);
        }
    }
}

/// A saturated ramp measured through waveform sampling reproduces its own
/// arrival and slew.
#[test]
fn ramp_measurements_round_trip() {
    let mut rng = Rng::new(0x2A);
    let th = Thresholds::cmos(1.2);
    for _ in 0..64 {
        let t50 = rng.range(300.0, 3000.0) * 1e-12;
        let slew = rng.range(20.0, 800.0) * 1e-12;
        let rising = rng.bool();
        let g = SaturatedRamp::with_slew(t50, slew, th, rising).expect("ramp");
        // Window covers the whole transition regardless of t50/slew ratio
        // (negative start times are fine for waveforms).
        let w = g
            .to_waveform(t50 - 3.0 * slew, t50 + 5.0 * slew + 1e-9, slew / 40.0)
            .expect("wave");
        let pol = w.polarity(th).expect("transitions");
        assert_eq!(pol.is_rise(), rising);
        let mid = w.last_crossing(th.mid()).expect("mid crossing");
        assert!((mid - t50).abs() < slew / 100.0 + 1e-13);
        let measured = w.slew_first_to_first(th, pol).expect("slew");
        assert!((measured - slew).abs() < slew * 0.02 + 1e-12);
    }
}

/// Waveform superposition is commutative in measurement space.
#[test]
fn superposition_commutes() {
    let mut rng = Rng::new(0x3B);
    for _ in 0..64 {
        let shift_ps = rng.range(0.0, 500.0);
        let height = rng.range(0.05, 0.4);
        let base = Waveform::new(vec![0.0, 1e-9, 2e-9], vec![0.0, 1.2, 1.2]).expect("base");
        let t0 = 0.3e-9 + shift_ps * 1e-12;
        let a = base
            .with_triangular_pulse(t0, 100e-12, -height)
            .expect("pulse");
        let pulse_only = Waveform::constant(0.0, 0.0, 2e-9)
            .expect("flat")
            .with_triangular_pulse(t0, 100e-12, -height)
            .expect("pulse");
        let b = base.plus(&pulse_only);
        for k in 0..50 {
            let t = 2e-9 * k as f64 / 49.0;
            assert!((a.value_at(t) - b.value_at(t)).abs() < 1e-9);
        }
    }
}

/// Every technique is time-shift equivariant: shifting the whole case by Δ
/// shifts Γeff's arrival by Δ and leaves its slew unchanged.
///
/// Glitch depths are kept away from the mid-rail and high-threshold grazing
/// points: crossing-based reductions are genuinely discontinuous where a
/// threshold crossing appears/disappears, and equivariance only holds
/// within a continuity region.
#[test]
fn techniques_are_shift_equivariant() {
    let mut rng = Rng::new(0x4C);
    let th = Thresholds::cmos(1.2);
    let gate = AnalyticInverterGate::fast(th);
    for _ in 0..24 {
        let shift_ps = rng.range(-400.0, 400.0);
        let glitch_depth = rng.range(0.15, 0.45);
        let clean = SaturatedRamp::with_slew(1.2e-9, 150e-12, th, true).expect("ramp");
        let noisy = clean
            .to_waveform(0.0, 3.5e-9, 2e-12)
            .expect("wave")
            .with_triangular_pulse(1.25e-9, 160e-12, -glitch_depth)
            .expect("glitch");
        let ctx = PropagationContext::with_gate(clean, noisy, &gate, th).expect("context");
        let dt = shift_ps * 1e-12;
        let shifted = ctx.shifted(dt);
        for method in MethodKind::all() {
            let g0 = method.equivalent(&ctx);
            let g1 = method.equivalent(&shifted);
            match (g0, g1) {
                (Ok(a), Ok(b)) => {
                    // Arrival tracks tightly. The slew bound is looser: the
                    // sensitivity filter's hard ρ=0 cutoff at the critical-
                    // region edge lets samples grazing the boundary flip
                    // weights under time-shift rounding.
                    let tol_t = 3e-12 + 0.01 * a.slew(th);
                    assert!(
                        (b.arrival_mid() - a.arrival_mid() - dt).abs() < tol_t,
                        "{}: {:e} vs {:e}",
                        method.name(),
                        a.arrival_mid(),
                        b.arrival_mid()
                    );
                    assert!(
                        (b.slew(th) - a.slew(th)).abs() < 0.1 * a.slew(th) + 1e-12,
                        "{}: slew {:e} vs {:e}",
                        method.name(),
                        a.slew(th),
                        b.slew(th)
                    );
                }
                (Err(_), Err(_)) => {} // consistent failure is acceptable
                (a, b) => panic!("{}: inconsistent {a:?} vs {b:?}", method.name()),
            }
        }
    }
}

/// On a clean (noise-free) input every technique returns the input ramp
/// itself, up to measurement tolerance.
#[test]
fn clean_input_is_a_fixed_point_for_all_techniques() {
    let mut rng = Rng::new(0x5D);
    let th = Thresholds::cmos(1.2);
    let gate = AnalyticInverterGate::fast(th);
    for _ in 0..24 {
        let slew = rng.range(60.0, 400.0) * 1e-12;
        let rising = rng.bool();
        let clean = SaturatedRamp::with_slew(1.5e-9, slew, th, rising).expect("ramp");
        let wave = clean.to_waveform(0.0, 4e-9, slew / 60.0).expect("wave");
        let ctx = PropagationContext::new(
            wave.clone(),
            wave,
            Some(
                gate.response(&clean.to_waveform(0.0, 4e-9, slew / 60.0).expect("w"))
                    .expect("out"),
            ),
            th,
        )
        .expect("context");
        for method in MethodKind::all() {
            let g = method.equivalent(&ctx).expect("clean input never fails");
            assert!(
                (g.arrival_mid() - 1.5e-9).abs() < slew * 0.05 + 3e-12,
                "{}: arrival {:e}",
                method.name(),
                g.arrival_mid()
            );
            assert!(
                (g.slew(th) - slew).abs() < slew * 0.12 + 3e-12,
                "{}: slew {:e} vs {slew:e}",
                method.name(),
                g.slew(th)
            );
        }
    }
}
