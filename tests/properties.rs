//! Property-based tests over the core data structures and the technique
//! invariants, spanning crates.

use noisy_sta::core::gate::{AnalyticInverterGate, GateModel};
use noisy_sta::core::{MethodKind, PropagationContext};
use noisy_sta::numeric::{DenseMatrix, LuFactors};
use noisy_sta::waveform::{SaturatedRamp, Thresholds, Waveform};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LU round trip: for diagonally dominant matrices, `A·x == b`.
    #[test]
    fn lu_solves_diagonally_dominant_systems(
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let mut a = DenseMatrix::zeros(n, n);
        for r in 0..n {
            for c in 0..n {
                a.set(r, c, next());
            }
            a.add(r, r, n as f64 + 1.0);
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let lu = LuFactors::factor(&a).expect("dominant matrices factor");
        let x = lu.solve(&b).expect("solve");
        let back = a.mul_vec(&x).expect("shape");
        for (want, got) in b.iter().zip(back) {
            prop_assert!((want - got).abs() < 1e-8);
        }
    }

    /// A saturated ramp measured through waveform sampling reproduces its
    /// own arrival and slew.
    #[test]
    fn ramp_measurements_round_trip(
        t50_ps in 300.0f64..3000.0,
        slew_ps in 20.0f64..800.0,
        rising in any::<bool>(),
    ) {
        let th = Thresholds::cmos(1.2);
        let t50 = t50_ps * 1e-12;
        let slew = slew_ps * 1e-12;
        let g = SaturatedRamp::with_slew(t50, slew, th, rising).expect("ramp");
        // Window covers the whole transition regardless of t50/slew ratio
        // (negative start times are fine for waveforms).
        let w = g
            .to_waveform(t50 - 3.0 * slew, t50 + 5.0 * slew + 1e-9, slew / 40.0)
            .expect("wave");
        let pol = w.polarity(th).expect("transitions");
        prop_assert_eq!(pol.is_rise(), rising);
        let mid = w.last_crossing(th.mid()).expect("mid crossing");
        prop_assert!((mid - t50).abs() < slew / 100.0 + 1e-13);
        let measured = w.slew_first_to_first(th, pol).expect("slew");
        prop_assert!((measured - slew).abs() < slew * 0.02 + 1e-12);
    }

    /// Waveform superposition is commutative in measurement space.
    #[test]
    fn superposition_commutes(
        shift_ps in 0.0f64..500.0,
        height in 0.05f64..0.4,
    ) {
        let base = Waveform::new(vec![0.0, 1e-9, 2e-9], vec![0.0, 1.2, 1.2]).expect("base");
        let t0 = 0.3e-9 + shift_ps * 1e-12;
        let a = base
            .with_triangular_pulse(t0, 100e-12, -height)
            .expect("pulse");
        let pulse_only = Waveform::constant(0.0, 0.0, 2e-9)
            .expect("flat")
            .with_triangular_pulse(t0, 100e-12, -height)
            .expect("pulse");
        let b = base.plus(&pulse_only);
        for k in 0..50 {
            let t = 2e-9 * k as f64 / 49.0;
            prop_assert!((a.value_at(t) - b.value_at(t)).abs() < 1e-9);
        }
    }

    /// Every technique is time-shift equivariant: shifting the whole case
    /// by Δ shifts Γeff's arrival by Δ and leaves its slew unchanged.
    ///
    /// Glitch depths are kept away from the mid-rail and high-threshold
    /// grazing points: crossing-based reductions are genuinely
    /// discontinuous where a threshold crossing appears/disappears, and
    /// equivariance only holds within a continuity region.
    #[test]
    fn techniques_are_shift_equivariant(
        shift_ps in -400.0f64..400.0,
        glitch_depth in 0.15f64..0.45,
    ) {
        let th = Thresholds::cmos(1.2);
        let gate = AnalyticInverterGate::fast(th);
        let clean = SaturatedRamp::with_slew(1.2e-9, 150e-12, th, true).expect("ramp");
        let noisy = clean
            .to_waveform(0.0, 3.5e-9, 2e-12)
            .expect("wave")
            .with_triangular_pulse(1.25e-9, 160e-12, -glitch_depth)
            .expect("glitch");
        let ctx = PropagationContext::with_gate(clean, noisy, &gate, th).expect("context");
        let dt = shift_ps * 1e-12;
        let shifted = ctx.shifted(dt);
        for method in MethodKind::all() {
            let g0 = method.equivalent(&ctx);
            let g1 = method.equivalent(&shifted);
            match (g0, g1) {
                (Ok(a), Ok(b)) => {
                    // Arrival tracks tightly. The slew bound is looser:
                    // the sensitivity filter's hard ρ=0 cutoff at the
                    // critical-region edge lets samples grazing the
                    // boundary flip weights under time-shift rounding.
                    let tol_t = 3e-12 + 0.01 * a.slew(th);
                    prop_assert!(
                        (b.arrival_mid() - a.arrival_mid() - dt).abs() < tol_t,
                        "{}: {:e} vs {:e}",
                        method.name(),
                        a.arrival_mid(),
                        b.arrival_mid()
                    );
                    prop_assert!(
                        (b.slew(th) - a.slew(th)).abs() < 0.1 * a.slew(th) + 1e-12,
                        "{}: slew {:e} vs {:e}",
                        method.name(),
                        a.slew(th),
                        b.slew(th)
                    );
                }
                (Err(_), Err(_)) => {} // consistent failure is acceptable
                (a, b) => prop_assert!(false, "{}: inconsistent {a:?} vs {b:?}", method.name()),
            }
        }
    }

    /// On a clean (noise-free) input every technique returns the input
    /// ramp itself, up to measurement tolerance.
    #[test]
    fn clean_input_is_a_fixed_point_for_all_techniques(
        slew_ps in 60.0f64..400.0,
        rising in any::<bool>(),
    ) {
        let th = Thresholds::cmos(1.2);
        let gate = AnalyticInverterGate::fast(th);
        let slew = slew_ps * 1e-12;
        let clean = SaturatedRamp::with_slew(1.5e-9, slew, th, rising).expect("ramp");
        let wave = clean.to_waveform(0.0, 4e-9, slew / 60.0).expect("wave");
        let ctx = PropagationContext::new(
            wave.clone(),
            wave,
            Some(gate.response(&clean.to_waveform(0.0, 4e-9, slew / 60.0).expect("w")).expect("out")),
            th,
        )
        .expect("context");
        for method in MethodKind::all() {
            let g = method.equivalent(&ctx).expect("clean input never fails");
            prop_assert!(
                (g.arrival_mid() - 1.5e-9).abs() < slew * 0.05 + 3e-12,
                "{}: arrival {:e}",
                method.name(),
                g.arrival_mid()
            );
            prop_assert!(
                (g.slew(th) - slew).abs() < slew * 0.12 + 3e-12,
                "{}: slew {:e} vs {slew:e}",
                method.name(),
                g.slew(th)
            );
        }
    }
}
