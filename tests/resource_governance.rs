//! Resource-governance integration tests: bounded topo-cache eviction is
//! bit-parity-safe, cooperative deadlines yield well-formed partial
//! results with per-net staleness (deterministically, on a fake clock),
//! and the convergence governor turns an unconverged fixed point into a
//! certified-conservative converged one with every widening on record.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use noisy_sta::circuit::RcLineSpec;
use noisy_sta::liberty::characterize::{inverter_family, Options};
use noisy_sta::liberty::Library;
use noisy_sta::spice::Process;
use noisy_sta::sta::{
    verilog, ArrivalWindow, Constraints, CouplingSpec, Deadline, DegradeAction, FakeClock,
    SiOptions,
};
use std::fmt::Write as _;
use std::sync::OnceLock;

fn lib() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(|| {
        inverter_family(
            &Process::c013(),
            &[("INVX1", 1.0), ("INVX4", 4.0)],
            &Options::fast_test(),
        )
        .expect("characterization")
    })
}

/// `groups` independent victim/aggressor pairs: `a{g} → v{g} → y{g}`
/// coupled to `b{g} → g{g} → z{g}`.
fn grouped_sta(groups: usize) -> (noisy_sta::sta::Sta, Vec<CouplingSpec>) {
    let mut src = String::from("module m (");
    let ports: Vec<String> = (0..groups)
        .flat_map(|g| {
            [
                format!("a{g}"),
                format!("b{g}"),
                format!("y{g}"),
                format!("z{g}"),
            ]
        })
        .collect();
    src.push_str(&ports.join(", "));
    src.push_str(");\n");
    for g in 0..groups {
        let _ = writeln!(src, "input a{g}, b{g}; output y{g}, z{g}; wire v{g}, g{g};");
        let _ = writeln!(src, "INVX1 u{g}_1 (.A(a{g}), .Y(v{g}));");
        let _ = writeln!(src, "INVX4 u{g}_2 (.A(v{g}), .Y(y{g}));");
        let _ = writeln!(src, "INVX1 u{g}_3 (.A(b{g}), .Y(g{g}));");
        let _ = writeln!(src, "INVX4 u{g}_4 (.A(g{g}), .Y(z{g}));");
    }
    src.push_str("endmodule\n");
    let design = verilog::parse_design(&src).expect("netlist");
    let sta = noisy_sta::sta::Sta::new(design, lib().clone()).expect("sta");
    let specs: Vec<CouplingSpec> = (0..groups)
        .map(|g| {
            CouplingSpec::new(
                sta.design().find_net(&format!("v{g}")).expect("victim"),
                vec![sta.design().find_net(&format!("g{g}")).expect("aggressor")],
                100e-15,
                RcLineSpec::per_micron(1000.0).expect("line"),
            )
        })
        .collect();
    (sta, specs)
}

/// A two-victim fixture where each coupled net is the other's aggressor:
/// every fixed-point iteration can move both windows, the shape in which
/// oscillation (and the governor's widening) lives.
fn mutual_sta() -> (noisy_sta::sta::Sta, Vec<CouplingSpec>) {
    let design = verilog::parse_design(
        "module m (a, b, y, z); input a, b; output y, z; wire v, g;\
         INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\
         INVX1 u3 (.A(b), .Y(g)); INVX4 u4 (.A(g), .Y(z)); endmodule",
    )
    .expect("netlist");
    let sta = noisy_sta::sta::Sta::new(design, lib().clone()).expect("sta");
    let v = sta.design().find_net("v").expect("v");
    let g = sta.design().find_net("g").expect("g");
    let line = RcLineSpec::per_micron(1000.0).expect("line");
    let specs = vec![
        CouplingSpec::new(v, vec![g], 100e-15, line),
        CouplingSpec::new(g, vec![v], 100e-15, line),
    ];
    (sta, specs)
}

// ---------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------

#[test]
fn pre_expired_fake_deadline_yields_well_formed_partial_result() {
    // Budget 0 on a fake clock: expired before the first cone is
    // scheduled, so every victim is skipped — the fully deterministic
    // worst case of a deadline expiry.
    let (sta, specs) = grouped_sta(4);
    let c = Constraints::default();
    let analysis = sta
        .analyze_with_crosstalk_windows(
            c,
            &specs,
            &SiOptions {
                deadline: Some(Deadline::on_fake(FakeClock::new(1), 0)),
                ..SiOptions::default()
            },
        )
        .expect("a deadline expiry degrades, it does not error");
    assert!(analysis.timed_out());
    let stale = analysis.stale_nets();
    assert_eq!(stale.len(), specs.len(), "every victim is stale");
    for spec in &specs {
        assert!(stale.contains(&spec.victim));
    }
    // Every stale net is on record as an unrecovered DeadlineSkipped
    // degrade event — structured staleness, not silence.
    for &net in &stale {
        assert!(analysis
            .degrade_events()
            .iter()
            .any(|e| e.action == DegradeAction::DeadlineSkipped
                && e.net == Some(net)
                && !e.recovered));
    }
    // The partial result is still a complete, usable report: stale
    // victims keep their nominal timing.
    assert!(analysis.report.worst_arrival() > 0.0);
    assert_eq!(analysis.report.nets().len(), sta.design().net_count());
    // No SI adjustment was fabricated for a victim that never simulated.
    assert!(analysis.adjustments.is_empty());
}

#[test]
fn mid_analysis_fake_deadline_expiry_is_deterministic_and_partial() {
    // A budget of a few fake-clock steps expires mid-pass: some cones
    // finish, the rest are skipped. The fake clock advances by a fixed
    // step per poll and the inline scheduler polls in a fixed order, so
    // the outcome is exactly reproducible — assert that, plus partial
    // progress in both directions.
    let (sta, specs) = grouped_sta(6);
    let c = Constraints::default();
    let run = || {
        sta.analyze_with_crosstalk_windows(
            c,
            &specs,
            &SiOptions {
                deadline: Some(Deadline::on_fake(FakeClock::new(1), 3)),
                ..SiOptions::default()
            },
        )
        .expect("deadline expiry degrades")
    };
    let a = run();
    let b = run();
    assert!(a.timed_out());
    let stale = a.stale_nets();
    assert!(!stale.is_empty(), "the deadline must have expired mid-run");
    assert!(
        stale.len() < specs.len(),
        "some cones must have finished before expiry (stale: {stale:?})"
    );
    // Deterministic: same stale set, bit-identical partial report.
    assert_eq!(stale, b.stale_nets());
    assert_eq!(a.report, b.report);
    assert_eq!(a.adjustments, b.adjustments);
}

#[test]
fn generous_deadline_is_bit_identical_to_no_deadline() {
    // Deadline polling may never perturb a result: a budget the analysis
    // cannot exhaust must reproduce the no-deadline run bit for bit.
    let (sta, specs) = grouped_sta(4);
    let c = Constraints::default();
    let unbounded = sta
        .analyze_with_crosstalk_windows(c, &specs, &SiOptions::default())
        .expect("no-deadline analysis");
    let governed = sta
        .analyze_with_crosstalk_windows(
            c,
            &specs,
            &SiOptions {
                deadline: Some(Deadline::on_fake(FakeClock::new(1), u64::MAX)),
                ..SiOptions::default()
            },
        )
        .expect("in-budget analysis");
    assert!(!governed.timed_out());
    assert!(governed.stale_nets().is_empty());
    assert_eq!(governed.report, unbounded.report);
    assert_eq!(governed.adjustments, unbounded.adjustments);
}

// ---------------------------------------------------------------------
// Cache budget
// ---------------------------------------------------------------------

#[test]
fn tiny_cache_budget_is_bit_identical_to_unbounded_at_1_and_4_threads() {
    // Eviction may only cost refactors: colliding cache keys are exact
    // bit patterns, so a starved cache (budget 1 byte: every insert
    // refused) must reproduce the unbounded cache bit for bit — on the
    // inline scheduler and on a worker pool.
    let (sta, specs) = grouped_sta(8);
    let c = Constraints::default();
    for threads in [1usize, 4] {
        let unbounded = sta
            .analyze_with_crosstalk_windows(
                c,
                &specs,
                &SiOptions {
                    threads,
                    cache_budget_bytes: usize::MAX,
                    ..SiOptions::default()
                },
            )
            .expect("unbounded-cache analysis");
        let starved = sta
            .analyze_with_crosstalk_windows(
                c,
                &specs,
                &SiOptions {
                    threads,
                    cache_budget_bytes: 1,
                    ..SiOptions::default()
                },
            )
            .expect("starved-cache analysis");
        assert!(
            starved.cache_evictions() > 0,
            "threads={threads}: a 1-byte budget must refuse stores"
        );
        assert_eq!(unbounded.cache_evictions(), 0);
        assert_eq!(starved.report, unbounded.report, "threads={threads}");
        assert_eq!(
            starved.adjustments, unbounded.adjustments,
            "threads={threads}"
        );
    }
}

// ---------------------------------------------------------------------
// Convergence governance
// ---------------------------------------------------------------------

#[test]
fn governor_converges_a_cap_starved_fixed_point_conservatively() {
    // max_iterations: 1 starves the mutual-aggressor fixed point (its
    // windows still move after one pass). Ungoverned, that returns
    // unconverged; the governor instead keeps iterating under the
    // union-widening update and must terminate *converged* within the
    // certified bound. (The widening algebra itself — termination and
    // windows ⊇ both iterates on a hand-built oscillation — is proven by
    // the governed_update_tames_a_two_victim_oscillation unit test in
    // si.rs; on this engine's monotonically growing windows the union is
    // a no-op, so no ConvergenceAction need appear here.)
    let (sta, specs) = mutual_sta();
    let c = Constraints::default();
    let starved = SiOptions {
        max_iterations: 1,
        convergence_governor: false,
        ..SiOptions::default()
    };
    let ungoverned = sta
        .analyze_with_crosstalk_windows(c, &specs, &starved)
        .expect("ungoverned analysis");
    assert!(
        !ungoverned.converged(),
        "fixture must not converge in one pass, or the governor has nothing to do"
    );
    assert_eq!(ungoverned.iterations(), 1);
    let governed = sta
        .analyze_with_crosstalk_windows(
            c,
            &specs,
            &SiOptions {
                convergence_governor: true,
                ..starved.clone()
            },
        )
        .expect("governed analysis");
    assert!(governed.converged(), "widening certifies termination");
    // Termination bound: max_iterations + one governed iteration per
    // coupled pair + slack (see the governed_cap derivation in si.rs).
    let total_pairs: usize = specs.iter().map(|s| s.aggressors.len()).sum();
    assert!(governed.iterations() <= 1 + total_pairs + 2);
    // Any widening the governor did apply must be conservative: the
    // installed window covers the iterate the pass actually computed.
    for a in governed.convergence_actions() {
        assert!(a.widened.earliest <= a.fresh.earliest);
        assert!(a.widened.latest >= a.fresh.latest);
        assert!(a.iteration >= 1);
    }
    // Governed convergence must not cost accuracy on the stationary
    // point: the governed result matches an amply-capped ungoverned run.
    let reference = sta
        .analyze_with_crosstalk_windows(c, &specs, &SiOptions::default())
        .expect("reference analysis");
    assert_eq!(governed.report, reference.report);
}

#[test]
fn governor_default_on_preserves_converging_runs_bit_identical() {
    // The governor's triggers cannot fire on a run whose deltas shrink,
    // so enabling it (the default) must not change a converging analysis
    // by a single bit.
    let (sta, specs) = grouped_sta(4);
    let c = Constraints::default();
    let on = sta
        .analyze_with_crosstalk_windows(c, &specs, &SiOptions::default())
        .expect("governed analysis");
    let off = sta
        .analyze_with_crosstalk_windows(
            c,
            &specs,
            &SiOptions {
                convergence_governor: false,
                ..SiOptions::default()
            },
        )
        .expect("ungoverned analysis");
    assert!(on.converged() && off.converged());
    assert!(on.convergence_actions().is_empty());
    assert_eq!(on.report, off.report);
    assert_eq!(on.adjustments, off.adjustments);
}

#[test]
fn window_union_is_conservative_and_idempotent() {
    // The widening primitive itself: the union covers both operands, and
    // a period-2 oscillation's union is a fixed point of further
    // widening — the algebra the governor's termination argument rests
    // on.
    let a = ArrivalWindow {
        earliest: 1.0e-12,
        latest: 5.0e-12,
    };
    let b = ArrivalWindow {
        earliest: 3.0e-12,
        latest: 9.0e-12,
    };
    let u = a.union(&b);
    assert!(u.earliest <= a.earliest && u.earliest <= b.earliest);
    assert!(u.latest >= a.latest && u.latest >= b.latest);
    // Oscillation a → b → a → …: once the union is installed, unioning
    // with either iterate changes nothing.
    assert_eq!(u.union(&a), u);
    assert_eq!(u.union(&b), u);
    assert_eq!(u.union(&u), u);
}
