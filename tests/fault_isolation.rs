//! Fault-tolerance integration tests: degenerate extractions flow into
//! structured errors or degraded-but-complete results per the fault
//! policy, and every deterministic injected fault (lost pivot, NaN solve,
//! worker panic, poisoned lock) recovers through the fallback machinery
//! with the recovered result landing within the dense-parity tolerance of
//! a fault-free run.

// Integration tests panic on failure by design; the workspace's
// library-only unwrap/expect denies do not apply here.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use noisy_sta::circuit::RcLineSpec;
use noisy_sta::liberty::characterize::{inverter_family, Options};
use noisy_sta::liberty::Library;
use noisy_sta::parasitics::{bind_couplings, parse_spef, BindOptions};
use noisy_sta::spice::Process;
use noisy_sta::sta::{
    verilog, Constraints, CouplingSpec, DegradeAction, FaultPolicy, SiOptions, StaError,
};
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The injection plan is process-global, so every test that arms it (or
/// asserts on fired counters) must hold this lock. Poison recovery keeps
/// one failing test from cascading into spurious lock panics.
fn fault_guard() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|p| p.into_inner())
}

fn lib() -> &'static Library {
    static LIB: OnceLock<Library> = OnceLock::new();
    LIB.get_or_init(|| {
        inverter_family(
            &Process::c013(),
            &[("INVX1", 1.0), ("INVX4", 4.0)],
            &Options::fast_test(),
        )
        .expect("characterization")
    })
}

/// `groups` independent victim/aggressor pairs: `a{g} → v{g} → y{g}`
/// coupled to `b{g} → g{g} → z{g}`.
fn grouped_sta(groups: usize) -> (noisy_sta::sta::Sta, Vec<CouplingSpec>) {
    let mut src = String::from("module m (");
    let ports: Vec<String> = (0..groups)
        .flat_map(|g| {
            [
                format!("a{g}"),
                format!("b{g}"),
                format!("y{g}"),
                format!("z{g}"),
            ]
        })
        .collect();
    src.push_str(&ports.join(", "));
    src.push_str(");\n");
    for g in 0..groups {
        let _ = writeln!(src, "input a{g}, b{g}; output y{g}, z{g}; wire v{g}, g{g};");
        let _ = writeln!(src, "INVX1 u{g}_1 (.A(a{g}), .Y(v{g}));");
        let _ = writeln!(src, "INVX4 u{g}_2 (.A(v{g}), .Y(y{g}));");
        let _ = writeln!(src, "INVX1 u{g}_3 (.A(b{g}), .Y(g{g}));");
        let _ = writeln!(src, "INVX4 u{g}_4 (.A(g{g}), .Y(z{g}));");
    }
    src.push_str("endmodule\n");
    let design = verilog::parse_design(&src).expect("netlist");
    let sta = noisy_sta::sta::Sta::new(design, lib().clone()).expect("sta");
    let specs: Vec<CouplingSpec> = (0..groups)
        .map(|g| {
            CouplingSpec::new(
                sta.design().find_net(&format!("v{g}")).expect("victim"),
                vec![sta.design().find_net(&format!("g{g}")).expect("aggressor")],
                100e-15,
                RcLineSpec::per_micron(1000.0).expect("line"),
            )
        })
        .collect();
    (sta, specs)
}

/// Arms one site, runs the windowed analysis under `Isolate`, disarms,
/// and asserts: the fault actually fired, everything recovered (no
/// dropped victim), the expected degrade action is on record, and the
/// worst arrival matches the fault-free run within the 1e-6 ps parity
/// tolerance.
fn assert_recovers(site: &str, expect_action: DegradeAction, opts: &SiOptions) {
    let _g = fault_guard();
    let groups = if site == "worker-panic" { 4 } else { 2 };
    let (sta, specs) = grouped_sta(groups);
    let c = Constraints::default();
    let clean = sta
        .analyze_with_crosstalk_windows(c, &specs, opts)
        .expect("clean analysis");
    assert!(clean.degrade_events().is_empty());

    noisy_sta::obs::fault::arm(site, 7).expect("arm");
    let injected = sta.analyze_with_crosstalk_windows(
        c,
        &specs,
        &SiOptions {
            fault_policy: FaultPolicy::Isolate,
            ..opts.clone()
        },
    );
    let fired = noisy_sta::obs::fault::total_fired();
    noisy_sta::obs::fault::disarm();
    let injected = injected.expect("injected analysis completes under Isolate");

    assert!(fired >= 1, "{site}: no fault fired; too few opportunities");
    let events = injected.degrade_events();
    assert!(
        events
            .iter()
            .any(|e| e.action == expect_action && e.recovered),
        "{site}: no recovered {expect_action:?} event in {events:?}"
    );
    assert!(
        !events
            .iter()
            .any(|e| e.action == DegradeAction::VictimDropped),
        "{site}: a victim was dropped instead of recovered: {events:?}"
    );
    let (wc, wi) = (
        clean.report.worst_arrival(),
        injected.report.worst_arrival(),
    );
    let delta = if wc == wi { 0.0 } else { (wi - wc).abs() };
    assert!(
        delta <= 1e-18,
        "{site}: recovered arrival off by {:.3e} ps",
        delta * 1e12
    );
}

#[test]
fn injected_pivot_loss_recovers_through_the_dense_fallback() {
    // The cache would dedupe factorizations (and with them the injection
    // site's opportunities); disable it so every victim attempt factors.
    assert_recovers(
        "pivot-loss",
        DegradeAction::DenseRetry,
        &SiOptions {
            topo_cache: false,
            ..SiOptions::default()
        },
    );
}

#[test]
fn injected_nan_solve_recovers_through_the_dense_fallback() {
    assert_recovers(
        "nan-solve",
        DegradeAction::DenseRetry,
        &SiOptions::default(),
    );
}

#[test]
fn injected_worker_panic_is_retried_on_the_coordinator() {
    assert_recovers(
        "worker-panic",
        DegradeAction::ConeRetry,
        &SiOptions {
            threads: 2,
            ..SiOptions::default()
        },
    );
}

#[test]
fn poisoned_topo_cache_lock_is_recovered() {
    assert_recovers(
        "cache-poison",
        DegradeAction::LockRecovered,
        &SiOptions::default(),
    );
}

/// Design matching the degenerate-SPEF fixtures below: victim `v`
/// coupled to aggressor `g`.
fn coupled_sta() -> noisy_sta::sta::Sta {
    let design = verilog::parse_design(
        "module m (a, b, y, z); input a, b; output y, z; wire v, g;\
         INVX1 u1 (.A(a), .Y(v)); INVX4 u2 (.A(v), .Y(y));\
         INVX1 u3 (.A(b), .Y(g)); INVX4 u4 (.A(g), .Y(z)); endmodule",
    )
    .expect("netlist");
    noisy_sta::sta::Sta::new(design, lib().clone()).expect("sta")
}

/// Runs the degenerate-SPEF flow under both fault policies and asserts
/// the Fail error names the victim and carries `expect_reason`, while
/// Isolate completes with the victim dropped and marked degraded.
fn assert_degenerate(spef_text: &str, expect_reason: &str) {
    let _g = fault_guard();
    let sta = coupled_sta();
    let spef = parse_spef(spef_text).expect("spef parses: the defect is electrical, not syntactic");
    let bound = bind_couplings(&spef, sta.design(), &BindOptions::default()).expect("bind");
    assert_eq!(bound.specs.len(), 1);
    let c = Constraints::default();

    // Fail (the default): a structured error, not a panic.
    let err = sta
        .analyze_with_crosstalk_windows(c, &bound.specs, &SiOptions::default())
        .expect_err("degenerate mesh must fail under FaultPolicy::Fail");
    match &err {
        StaError::DegenerateMesh { net, reason } => {
            assert_eq!(net, "v");
            assert!(reason.contains(expect_reason), "reason {reason:?}");
        }
        other => panic!("expected DegenerateMesh, got {other:?}"),
    }

    // Isolate: the run completes, the victim keeps its nominal timing
    // (no adjustment) and is reported degraded.
    let analysis = sta
        .analyze_with_crosstalk_windows(
            c,
            &bound.specs,
            &SiOptions {
                fault_policy: FaultPolicy::Isolate,
                ..SiOptions::default()
            },
        )
        .expect("isolate completes with partial results");
    let v = sta.design().find_net("v").expect("net v");
    assert!(analysis.adjustments.iter().all(|a| a.net != v));
    let events = analysis.degrade_events();
    assert!(
        events
            .iter()
            .any(|e| e.action == DegradeAction::VictimDropped
                && e.net == Some(v)
                && !e.recovered
                && e.cause.contains(expect_reason)),
        "expected a VictimDropped event for v in {events:?}"
    );
    assert!(analysis.diagnostics.unrecovered_nets().contains(&v));
    assert!(analysis.report.worst_arrival() > 0.0);
}

#[test]
fn zero_capacitance_extraction_fails_fail_and_degrades_isolate() {
    assert_degenerate(
        "*C_UNIT 1 FF\n*NAME_MAP\n*1 v\n*2 g\n\
         *D_NET *1 12.0\n\
         *CAP\n1 *1:1 0.0\n2 *1:1 *2:1 12.0\n\
         *RES\n1 *1 *1:1 5.0\n*END\n\
         *D_NET *2 30.0\n*CAP\n1 *2:1 30.0\n*RES\n1 *2 *2:1 4.0\n*END\n",
        "zero capacitance",
    );
}

#[test]
fn disconnected_node_extraction_fails_fail_and_degrades_isolate() {
    assert_degenerate(
        "*C_UNIT 1 FF\n*NAME_MAP\n*1 v\n*2 g\n\
         *D_NET *1 30.0\n\
         *CAP\n1 *1:1 10.0\n2 *1:9 20.0\n3 *1:1 *2:1 12.0\n\
         *RES\n1 *1 *1:1 5.0\n*END\n\
         *D_NET *2 30.0\n*CAP\n1 *2:1 30.0\n*RES\n1 *2 *2:1 4.0\n*END\n",
        "disconnected node v:9",
    );
}
